// Machine checkpointing: Snapshot captures every piece of predictor-visible
// microarchitectural and per-hart architectural state as flat copies, and
// RestoreFrom rewinds a compatible machine to it. The harness warm-state
// cache (internal/harness) trains once per configuration, snapshots, and
// restores per trial instead of re-running training loops.
//
// A snapshot deliberately does NOT capture:
//
//   - Memory. Pages are large and every experiment driver (re)writes the
//     values it later reads — round keys, plaintexts, probe slots — after
//     machine setup, so capturing memory would copy megabytes to preserve
//     bytes nothing reads. The cache model keys on addresses only, so cache
//     state (which IS captured) stays exact without the backing values.
//   - Aux and the decoded-program cache. Both are derived caches rebuilt
//     deterministically from the program (core's templates self-heal, and
//     progState validates statRefs against instruction addresses).
//   - Syscall/enclave stub registrations and TraceTaken. Registration is
//     driver setup, not simulated state.
//   - Options. Seed, noise probability and fault profile stay the
//     *machine's*; Reseed moves them explicitly when a restored machine
//     must follow a different trial seed.
//
// Snapshots are immutable once taken and safe to share between goroutines:
// RestoreFrom only reads the snapshot, copying into the machine
// (copy-on-use), which is what lets sharded drivers share one warm
// snapshot without weakening the Parallelism-invariance contract.
package cpu

import (
	"sort"

	"pathfinder/internal/bpu"
	"pathfinder/internal/cache"
	"pathfinder/internal/isa"
	"pathfinder/internal/phr"
)

// hartState is the saved per-hart state: the private PHR, security domain,
// the full register file with readiness stamps, the call stack and the RAND
// stream position.
type hartState struct {
	phr    phr.Reg
	domain Domain
	regs   [isa.NumRegs]uint64
	vregs  [isa.NumVRegs][16]byte
	ready  [isa.NumRegs]uint64
	stack  []frame
	rng    uint64
}

// pcStat is one saved per-branch statistic, kept pc-sorted so snapshot
// hashes do not depend on map iteration order.
type pcStat struct {
	pc uint64
	s  BranchStat
}

// Snapshot is a saved machine state. Take one with Machine.Snapshot or
// SnapshotInto; apply it with Machine.RestoreFrom. The zero value is a
// valid (empty) destination for SnapshotInto.
type Snapshot struct {
	arch    string
	phrSize int

	unit  bpu.UnitState
	data  cache.State
	ibrs  bool
	noise uint64
	injOK bool   // whether the machine had an armed fault injector
	inj   uint64 // injector PRNG state, when injOK

	stats Counters
	perPC []pcStat
	harts []hartState

	hash uint64
}

// Hash returns the snapshot's content hash, computed eagerly when the
// snapshot is taken. Equal hashes mean (up to hash collisions) equal
// captured state; the warm-state cache and the differential tests use it
// as a cheap equality check.
func (s *Snapshot) Hash() uint64 { return s.hash }

// Arch returns the name of the microarchitecture the snapshot was taken on.
func (s *Snapshot) Arch() string { return s.arch }

// Snapshot captures the machine's complete predictor-visible state into a
// fresh Snapshot. See the package comment above for what is and is not
// captured. It panics on a machine with a custom predictor
// (Options.NewPredictor): an oracle's state cannot be captured generically,
// exactly as with Recycle.
func (m *Machine) Snapshot() *Snapshot {
	s := &Snapshot{}
	m.SnapshotInto(s)
	return s
}

// SnapshotInto captures the machine state into dst, reusing dst's storage
// so steady-state checkpointing allocates nothing.
func (m *Machine) SnapshotInto(dst *Snapshot) {
	if m.opts.NewPredictor != nil {
		panic("cpu: snapshot with a custom predictor")
	}
	dst.arch = m.opts.Arch.Name
	dst.phrSize = m.opts.Arch.PHRSize

	m.BPU.Save(&dst.unit)
	m.Data.Save(&dst.data)
	dst.ibrs = m.IBRS
	dst.noise = m.noise.s
	dst.injOK = m.inj != nil
	dst.inj = 0
	if m.inj != nil {
		dst.inj = m.inj.State()
	}
	dst.stats = m.stats

	dst.perPC = dst.perPC[:0]
	for pc, st := range m.perPC {
		if *st == (BranchStat{}) {
			continue // zeroed in place by ResetStats/Recycle; same as absent
		}
		dst.perPC = append(dst.perPC, pcStat{pc: pc, s: *st})
	}
	sort.Slice(dst.perPC, func(i, j int) bool { return dst.perPC[i].pc < dst.perPC[j].pc })

	if len(dst.harts) != len(m.harts) {
		dst.harts = make([]hartState, len(m.harts))
	}
	for i, h := range m.harts {
		hs := &dst.harts[i]
		hs.phr = *h.PHR // storage only; restore goes through CopyFrom
		hs.domain = h.Domain
		hs.regs = h.regs
		hs.vregs = h.vregs
		hs.ready = h.ready
		hs.stack = append(hs.stack[:0], h.stack...)
		hs.rng = h.rng.s
	}

	dst.hash = dst.computeHash()

	// The machine now matches dst exactly, so it is in restore-sync with it:
	// regions whose dirty bits are clear equal dst's capture of them (the
	// bits stay raised for anything mutated since the last restore — a
	// conservative superset of what could differ). A later RestoreFrom(dst)
	// — or of any snapshot with equal content — may take the dirty-only path.
	m.syncOK, m.syncHash = true, dst.hash
}

// RestoreFrom rewinds the machine to a previously captured snapshot. The
// snapshot must come from a machine of the same microarchitecture, hart
// count and fault-armament (the injector's *profile* stays the machine's
// own; only its PRNG position is restored), and neither side may use a
// custom predictor. RestoreFrom panics otherwise — a silent cross-config
// restore would corrupt an experiment, not degrade it.
//
// The machine's Options (seed, noise probability, fault profile) are not
// touched; use Reseed to move the derived PRNG streams to a new seed after
// restoring.
func (m *Machine) RestoreFrom(s *Snapshot) {
	if m.opts.NewPredictor != nil {
		panic("cpu: restore with a custom predictor")
	}
	if s.arch != m.opts.Arch.Name || s.phrSize != m.opts.Arch.PHRSize {
		panic("cpu: restore across microarchitectures")
	}
	if len(s.harts) != len(m.harts) {
		panic("cpu: restore with a different hart count")
	}
	if s.injOK != (m.inj != nil) {
		panic("cpu: restore across fault-injection configurations")
	}

	// Dirty-only fast path: when the machine's clean predictor/cache regions
	// provably match s (it was last synced to a state with s's content hash,
	// and the dirty bitmaps recorded every mutation since), copy just the
	// dirty regions. Hash equality stands in for content equality here
	// exactly as it does in the warm-state cache and the differential
	// suites. Everything scalar or footprint-sized below is copied either
	// way.
	if m.syncOK && m.syncHash == s.hash {
		m.BPU.RestoreDirty(&s.unit)
		m.Data.RestoreDirty(&s.data)
	} else {
		m.BPU.Restore(&s.unit)
		m.Data.Restore(&s.data)
	}
	m.IBRS = s.ibrs
	m.noise.s = s.noise
	if m.inj != nil {
		m.inj.SetState(s.inj)
	}
	m.stats = s.stats

	// Zero the live per-branch stats in place (decoded-program statRefs stay
	// valid, and a zeroed stat reads the same as an absent one), then lay
	// down the captured values.
	for _, st := range m.perPC {
		*st = BranchStat{}
	}
	for i := range s.perPC {
		*m.branchStat(s.perPC[i].pc) = s.perPC[i].s
	}

	for i, h := range m.harts {
		hs := &s.harts[i]
		// CopyFrom, not assignment: it advances the destination's fold-cache
		// generation monotonically, so (pointer, generation)-keyed fold memos
		// in the tagged tables can never serve a stale entry after a rewind.
		h.PHR.CopyFrom(&hs.phr)
		h.Domain = hs.domain
		h.regs = hs.regs
		h.vregs = hs.vregs
		h.ready = hs.ready
		h.stack = append(h.stack[:0], hs.stack...)
		h.rng.s = hs.rng
	}

	m.syncOK, m.syncHash = true, s.hash
}

// Reseed re-derives every seed-dependent PRNG stream — the transient-noise
// stream, each hart's RAND stream and the fault injector — exactly as
// New(opts) with the new seed would, leaving all other state alone. A
// restored machine plus Reseed is how one warm snapshot serves many trial
// seeds.
func (m *Machine) Reseed(seed int64) {
	m.opts.Seed = seed
	m.noise = splitmix64{s: uint64(seed)*2654435761 + 1}
	if m.inj != nil {
		m.inj.Reset(seed)
	}
	for i, h := range m.harts {
		h.rng = splitmix64{s: uint64(seed) + uint64(i)*0x632be59bd9b4e019 + 7}
	}
}

// computeHash folds the whole captured state, FNV-1a style.
func (s *Snapshot) computeHash() uint64 {
	const prime = 0x100000001b3
	h := uint64(0xcbf29ce484222325)
	mix := func(w uint64) { h = (h ^ w) * prime }

	for i := 0; i < len(s.arch); i++ {
		mix(uint64(s.arch[i]))
	}
	mix(uint64(s.phrSize))
	h = s.unit.Hash(h)
	h = s.data.Hash(h)
	if s.ibrs {
		mix(1)
	} else {
		mix(0)
	}
	mix(s.noise)
	if s.injOK {
		mix(s.inj)
	}
	mix(s.stats.Instructions)
	mix(s.stats.Cycles)
	mix(s.stats.CondBranches)
	mix(s.stats.TakenBranches)
	mix(s.stats.Mispredicts)
	mix(s.stats.TransientInstrs)
	mix(s.stats.Runs)
	for i := range s.perPC {
		p := &s.perPC[i]
		mix(p.pc)
		mix(p.s.Executed)
		mix(p.s.Taken)
		mix(p.s.Mispredicted)
	}
	for i := range s.harts {
		hs := &s.harts[i]
		for _, w := range hs.phr.Words() {
			mix(w)
		}
		mix(uint64(hs.domain))
		for _, r := range hs.regs {
			mix(r)
		}
		for _, v := range hs.vregs {
			for _, b := range v {
				mix(uint64(b))
			}
		}
		for _, r := range hs.ready {
			mix(r)
		}
		mix(uint64(len(hs.stack)))
		for _, f := range hs.stack {
			mix(uint64(uint32(f.retIdx)))
			if f.restoreDomain {
				mix(uint64(f.prevDomain) | 1<<8)
			}
		}
		mix(hs.rng)
	}
	return h
}
