package cpu

import (
	"strings"
	"testing"

	"pathfinder/internal/aes"
	"pathfinder/internal/bpu"
	"pathfinder/internal/cache"
	"pathfinder/internal/isa"
	"pathfinder/internal/phr"
)

func mustAssemble(t *testing.T, build func(a *isa.Assembler)) *isa.Program {
	t.Helper()
	a := isa.NewAssembler()
	build(a)
	p, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestArithmeticAndLoop(t *testing.T) {
	p := mustAssemble(t, func(a *isa.Assembler) {
		a.Label("main")
		a.MovI(isa.R1, 0)  // sum
		a.MovI(isa.R2, 10) // n
		a.MovI(isa.R3, 0)  // i
		a.Label("loop")
		a.Add(isa.R1, isa.R1, isa.R3)
		a.AddI(isa.R3, isa.R3, 1)
		a.Br(isa.LT, isa.R3, isa.R2, "loop")
		a.Halt()
	})
	m := New(Options{})
	if err := m.Run(p, "main"); err != nil {
		t.Fatal(err)
	}
	if got := m.Hart(0).Reg(isa.R1); got != 45 {
		t.Fatalf("sum = %d, want 45", got)
	}
	if m.Stats().CondBranches != 10 {
		t.Fatalf("cond branches %d, want 10", m.Stats().CondBranches)
	}
}

func TestMemoryOps(t *testing.T) {
	p := mustAssemble(t, func(a *isa.Assembler) {
		a.Label("main")
		a.MovI(isa.R1, 0x8000)
		a.MovI(isa.R2, 0x1122334455667788)
		a.St(isa.R1, 0, isa.R2)
		a.Ld(isa.R3, isa.R1, 0)
		a.LdB(isa.R4, isa.R1, 1)
		a.MovI(isa.R5, 0xab)
		a.StB(isa.R1, 8, isa.R5)
		a.LdB(isa.R6, isa.R1, 8)
		a.Halt()
	})
	m := New(Options{})
	if err := m.Run(p, "main"); err != nil {
		t.Fatal(err)
	}
	h := m.Hart(0)
	if h.Reg(isa.R3) != 0x1122334455667788 {
		t.Fatalf("ld: %#x", h.Reg(isa.R3))
	}
	if h.Reg(isa.R4) != 0x77 {
		t.Fatalf("ldb: %#x", h.Reg(isa.R4))
	}
	if h.Reg(isa.R6) != 0xab {
		t.Fatalf("stb/ldb: %#x", h.Reg(isa.R6))
	}
}

func TestPHRUpdatesMatchModel(t *testing.T) {
	// Run a few taken branches and check the hart PHR against a reference
	// computed directly from the phr package.
	p := mustAssemble(t, func(a *isa.Assembler) {
		a.Label("main")
		a.MovI(isa.R1, 1)
		a.Label("b0")
		a.Br(isa.EQ, isa.R1, isa.R1, "t0") // always taken
		a.Nop()
		a.Org(0x5abc)
		a.Label("t0")
		a.Jmp("t1")
		a.Org(0x20000)
		a.Label("t1")
		a.Call("fn")
		a.Halt()
		a.Org(0x31234)
		a.Label("fn")
		a.Ret()
	})
	m := New(Options{})
	if err := m.Run(p, "main"); err != nil {
		t.Fatal(err)
	}
	ref := phr.New(m.Arch().PHRSize)
	b0 := p.MustSymbol("b0")
	t0 := p.MustSymbol("t0")
	t1 := p.MustSymbol("t1")
	fn := p.MustSymbol("fn")
	callAddr := t1 // call is the first instruction at t1
	retTarget := callAddr + 1
	ref.UpdateBranch(b0, t0)       // conditional taken
	ref.UpdateBranch(t0, t1)       // jmp
	ref.UpdateBranch(callAddr, fn) // call
	retAddr := fn                  // ret is the first instruction of fn
	ref.UpdateBranch(retAddr, retTarget)
	if !m.Hart(0).PHR.Equal(ref) {
		t.Fatalf("PHR mismatch:\n got %v\nwant %v", m.Hart(0).PHR, ref)
	}
	if m.Stats().TakenBranches != 4 {
		t.Fatalf("taken branches %d, want 4", m.Stats().TakenBranches)
	}
}

func TestNotTakenBranchLeavesPHR(t *testing.T) {
	p := mustAssemble(t, func(a *isa.Assembler) {
		a.Label("main")
		a.MovI(isa.R1, 1)
		a.MovI(isa.R2, 2)
		a.Br(isa.EQ, isa.R1, isa.R2, "skip") // never taken
		a.Label("skip")
		a.Halt()
	})
	m := New(Options{})
	if err := m.Run(p, "main"); err != nil {
		t.Fatal(err)
	}
	if !m.Hart(0).PHR.IsZero() {
		t.Fatal("not-taken branch changed the PHR")
	}
}

func TestUnconditionalBranchesDoNotTouchPHTs(t *testing.T) {
	p := mustAssemble(t, func(a *isa.Assembler) {
		a.Label("main")
		a.Jmp("a")
		a.Label("a")
		a.Jmp("b")
		a.Label("b")
		a.Call("f")
		a.Halt()
		a.Label("f")
		a.Ret()
	})
	m := New(Options{})
	if err := m.Run(p, "main"); err != nil {
		t.Fatal(err)
	}
	for i, tt := range m.BPU.CBP.Tables {
		if tt.Occupancy() != 0 {
			t.Fatalf("table %d touched by unconditional branches", i)
		}
	}
	if m.Stats().CondBranches != 0 {
		t.Fatal("no conditional branches were executed")
	}
}

func TestBiasedBranchPredictsWell(t *testing.T) {
	p := mustAssemble(t, func(a *isa.Assembler) {
		a.Label("main")
		a.MovI(isa.R1, 0)
		a.MovI(isa.R2, 200)
		a.Label("loop")
		a.AddI(isa.R1, isa.R1, 1)
		a.Label("back")
		a.Br(isa.LT, isa.R1, isa.R2, "loop")
		a.Halt()
	})
	m := New(Options{})
	if err := m.Run(p, "main"); err != nil {
		t.Fatal(err)
	}
	st := m.Branch(p.MustSymbol("back"))
	if st.Executed != 200 {
		t.Fatalf("executed %d", st.Executed)
	}
	if st.MispredictRate() > 0.1 {
		t.Fatalf("biased branch mispredict rate %.2f", st.MispredictRate())
	}
}

func TestRandomBranchMispredictsHalfTheTime(t *testing.T) {
	p := mustAssemble(t, func(a *isa.Assembler) {
		a.Label("main")
		a.MovI(isa.R1, 0)
		a.MovI(isa.R2, 1000)
		a.MovI(isa.R5, 1)
		a.Label("loop")
		a.Rand(isa.R3)
		a.And(isa.R3, isa.R3, isa.R5)
		a.Label("coin")
		a.Br(isa.EQ, isa.R3, isa.R5, "heads")
		a.Label("heads")
		a.AddI(isa.R1, isa.R1, 1)
		a.Br(isa.LT, isa.R1, isa.R2, "loop")
		a.Halt()
	})
	m := New(Options{Seed: 99})
	if err := m.Run(p, "main"); err != nil {
		t.Fatal(err)
	}
	rate := m.Branch(p.MustSymbol("coin")).MispredictRate()
	if rate < 0.35 || rate > 0.65 {
		t.Fatalf("coin-flip branch mispredict rate %.2f, want ~0.5", rate)
	}
}

func TestCallRetNesting(t *testing.T) {
	p := mustAssemble(t, func(a *isa.Assembler) {
		a.Label("main")
		a.MovI(isa.R1, 0)
		a.Call("f")
		a.Call("f")
		a.Halt()
		a.Label("f")
		a.AddI(isa.R1, isa.R1, 1)
		a.Call("g")
		a.Ret()
		a.Label("g")
		a.AddI(isa.R1, isa.R1, 10)
		a.Ret()
	})
	m := New(Options{})
	if err := m.Run(p, "main"); err != nil {
		t.Fatal(err)
	}
	if got := m.Hart(0).Reg(isa.R1); got != 22 {
		t.Fatalf("R1 = %d, want 22", got)
	}
}

func TestEntryFrameReturnEndsRun(t *testing.T) {
	p := mustAssemble(t, func(a *isa.Assembler) {
		a.Label("fn")
		a.MovI(isa.R1, 7)
		a.Ret()
	})
	m := New(Options{})
	if err := m.Run(p, "fn"); err != nil {
		t.Fatal(err)
	}
	if m.Hart(0).Reg(isa.R1) != 7 {
		t.Fatal("function body did not run")
	}
}

func TestTransientLeakThroughCache(t *testing.T) {
	// A branch is trained taken, then flipped. The wrong (predicted) path
	// dereferences a secret-dependent probe slot; the squash must preserve
	// the cache footprint but discard register effects.
	// Classic Spectre-v1 shape: a bounds check trained in-bounds (gadget on
	// the architectural fallthrough) is finally fed an out-of-bounds index.
	// The wrong path is straight-line, so the transient execution reads the
	// secret and touches its probe slot; the squash must preserve the cache
	// footprint and discard the register effects.
	const (
		arrayBase  = 0x4000
		secretOff  = 64 // secret lives past the 10-byte array
		lenAddr    = 0x5000
		inputsAddr = 0x6000
		probeBase  = 0x100000
	)
	p := mustAssemble(t, func(a *isa.Assembler) {
		a.Label("main")
		a.MovI(isa.R1, 0)  // j
		a.MovI(isa.R2, 10) // trials
		a.MovI(isa.R7, arrayBase)
		a.MovI(isa.R8, probeBase)
		a.MovI(isa.R10, inputsAddr)
		a.MovI(isa.R11, lenAddr)
		a.MovI(isa.R9, 123) // canary
		a.Label("loop")
		a.ShlI(isa.R4, isa.R1, 3)
		a.Add(isa.R4, isa.R10, isa.R4)
		a.Ld(isa.R3, isa.R4, 0)   // x = inputs[j]
		a.Ld(isa.R12, isa.R11, 0) // len = *lenAddr (flushed on the last trial)
		a.Label("spec")
		a.Br(isa.GEU, isa.R3, isa.R12, "skip") // bounds check
		// In-bounds (trained) path == transient wrong path on the final trial:
		a.Add(isa.R5, isa.R7, isa.R3)
		a.LdB(isa.R5, isa.R5, 0)   // array[x] (the secret on the wrong path)
		a.ShlI(isa.R5, isa.R5, 12) // *4096
		a.Add(isa.R5, isa.R5, isa.R8)
		a.LdB(isa.R6, isa.R5, 0) // touch probe slot
		a.MovI(isa.R9, 999)      // squashed on the wrong path
		a.Label("skip")
		a.AddI(isa.R1, isa.R1, 1)
		a.Br(isa.LT, isa.R1, isa.R2, "loop")
		a.Halt()
	})
	m := New(Options{Seed: 1})
	m.Mem.Write64(lenAddr, 10)
	m.Mem.Write8(arrayBase+secretOff, 0x42) // the secret
	for j := 0; j < 9; j++ {
		m.Mem.Write64(inputsAddr+uint64(8*j), uint64(j)) // benign, array[j]=0
	}
	m.Mem.Write64(inputsAddr+8*9, secretOff) // final, out-of-bounds index
	probe := cache.NewProbeArray(m.Data, probeBase)
	probe.Flush()
	m.Data.Flush(lenAddr) // widen the window for the final trial
	if err := m.Run(p, "main"); err != nil {
		t.Fatal(err)
	}
	// Architectural state: canary intact (the final trial skipped the body).
	if m.Hart(0).Reg(isa.R9) != 999 {
		// Training iterations DO run the body architecturally, so the
		// canary legitimately becomes 999 there. Rather than asserting on
		// it, assert the final trial's branch state below.
		t.Logf("canary = %d", m.Hart(0).Reg(isa.R9))
	}
	st := m.Branch(p.MustSymbol("spec"))
	if st.Executed != 10 || st.Taken != 1 {
		t.Fatalf("spec executed=%d taken=%d", st.Executed, st.Taken)
	}
	if st.Mispredicted == 0 {
		t.Fatal("final out-of-bounds trial did not mispredict")
	}
	if m.Stats().TransientInstrs == 0 {
		t.Fatal("no transient execution happened")
	}
	// The covert channel: the secret's probe slot is cached...
	if !m.Data.Contains(probeBase + 0x42*cache.ProbeStride) {
		t.Fatal("secret probe slot not cached: transient leak failed")
	}
	// ...and neighbouring slots are not.
	if m.Data.Contains(probeBase + 0x41*cache.ProbeStride) {
		t.Fatal("unrelated probe slot cached")
	}
}

func TestTransientWindowWidenedByFlush(t *testing.T) {
	// Two identical mispredicting branches; one depends on a cached value,
	// the other on a flushed value. The flushed one must execute more
	// transient instructions.
	build := func(flush bool) uint64 {
		const data = 0x7000
		p := mustAssemble(t, func(a *isa.Assembler) {
			a.Label("main")
			a.MovI(isa.R1, 0)
			a.MovI(isa.R6, data)
			a.MovI(isa.R3, 10)
			a.Label("loop")
			a.AddI(isa.R1, isa.R1, 1)
			if flush {
				a.Clflush(isa.R6, 0)
			}
			a.Ld(isa.R2, isa.R6, 0) // loop bound from memory
			a.Label("spec")
			a.Br(isa.LT, isa.R1, isa.R2, "cont")
			a.Halt()
			a.Label("cont")
			// Long straight-line filler: transient fodder after the final
			// (mispredicted-taken) execution... actually the wrong path of
			// the final NT execution is "cont" onward.
			for i := 0; i < 300; i++ {
				a.AddI(isa.R4, isa.R4, 1)
			}
			a.Jmp("loop")
		})
		m := New(Options{Seed: 5})
		m.Mem.Write64(data, 10)
		if err := m.Run(p, "main"); err != nil {
			t.Fatal(err)
		}
		return m.Stats().TransientInstrs
	}
	cached := build(false)
	flushed := build(true)
	if flushed <= cached {
		t.Fatalf("flush did not widen the window: cached=%d flushed=%d", cached, flushed)
	}
}

func TestSyscallDomainAndStubBranches(t *testing.T) {
	p := mustAssemble(t, func(a *isa.Assembler) {
		a.Label("main")
		a.Syscall(7)
		a.Halt()
		a.Label("__kernel_7")
		a.Jmp("k1")
		a.Label("k1")
		a.Jmp("k2")
		a.Label("k2")
		a.Ret()
	})
	m := New(Options{})
	m.RegisterKernelStub(7, "__kernel_7")
	if err := m.Run(p, "main"); err != nil {
		t.Fatal(err)
	}
	if m.Hart(0).Domain != User {
		t.Fatal("domain not restored after syscall")
	}
	// Stub executed 2 jumps + 1 ret = 3 taken branches, all PHR-visible.
	if m.Stats().TakenBranches != 3 {
		t.Fatalf("taken branches %d, want 3", m.Stats().TakenBranches)
	}
	if m.Hart(0).PHR.IsZero() {
		t.Fatal("kernel branches must land in the user-visible PHR (§7.1)")
	}
}

func TestSyscallWithoutStubFails(t *testing.T) {
	p := mustAssemble(t, func(a *isa.Assembler) {
		a.Label("main")
		a.Syscall(1)
		a.Halt()
	})
	m := New(Options{})
	if err := m.Run(p, "main"); err == nil {
		t.Fatal("missing stub must error")
	}
}

func TestIBRSFlushesOnlyIndirectPredictors(t *testing.T) {
	p := mustAssemble(t, func(a *isa.Assembler) {
		a.Label("main")
		a.MovI(isa.R1, 1)
		a.Label("cb")
		a.Br(isa.EQ, isa.R1, isa.R1, "next") // taken conditional: trains CBP
		a.Label("next")
		a.Syscall(0)
		a.Halt()
		a.Label("__kernel_0")
		a.Ret()
	})
	m := New(Options{})
	m.IBRS = true
	m.RegisterKernelStub(0, "__kernel_0")
	// Train the CBP (mispredict forces a tagged allocation).
	if err := m.Run(p, "main"); err != nil {
		t.Fatal(err)
	}
	occ := 0
	for _, tt := range m.BPU.CBP.Tables {
		occ += tt.Occupancy()
	}
	if occ == 0 {
		t.Fatal("expected CBP allocations to survive IBRS syscalls")
	}
	if m.BPU.BTB.Occupancy() != 0 {
		// The BTB entries inserted before the syscall must be gone; the
		// ones inserted after (the stub's RET is IBP) may repopulate.
		// Conditional branch "cb" inserted one BTB entry pre-syscall.
		t.Log("BTB repopulated post-flush (acceptable)")
	}
}

func TestSMTSeparatePHRSharedCBP(t *testing.T) {
	p := mustAssemble(t, func(a *isa.Assembler) {
		a.Label("main")
		a.MovI(isa.R1, 1)
		a.Label("b")
		a.Br(isa.EQ, isa.R1, isa.R1, "t")
		a.Label("t")
		a.Halt()
	})
	m := New(Options{Harts: 2})
	if err := m.RunOn(0, p, "main"); err != nil {
		t.Fatal(err)
	}
	if m.Hart(0).PHR.IsZero() {
		t.Fatal("hart 0 PHR empty")
	}
	if !m.Hart(1).PHR.IsZero() {
		t.Fatal("hart 1 PHR must be private (§7.3)")
	}
	// Shared CBP: hart 1 predicts using state trained by hart 0.
	preOcc := 0
	for _, tt := range m.BPU.CBP.Tables {
		preOcc += tt.Occupancy()
	}
	base := m.BPU.CBP.Base.Counter(p.MustSymbol("b"))
	if preOcc == 0 && base == 3 {
		t.Fatal("hart 0 training left no shared predictor state")
	}
}

func TestTimedLdDistinguishesHitMiss(t *testing.T) {
	p := mustAssemble(t, func(a *isa.Assembler) {
		a.Label("main")
		a.MovI(isa.R1, 0x9000)
		a.TimedLd(isa.R2, isa.R1, 0) // miss
		a.TimedLd(isa.R3, isa.R1, 0) // hit
		a.Clflush(isa.R1, 0)
		a.TimedLd(isa.R4, isa.R1, 0) // miss again
		a.Halt()
	})
	m := New(Options{})
	if err := m.Run(p, "main"); err != nil {
		t.Fatal(err)
	}
	h := m.Hart(0)
	if h.Reg(isa.R2) != cache.MissLatency || h.Reg(isa.R4) != cache.MissLatency {
		t.Fatalf("miss latencies: %d %d", h.Reg(isa.R2), h.Reg(isa.R4))
	}
	if h.Reg(isa.R3) != cache.HitLatency {
		t.Fatalf("hit latency: %d", h.Reg(isa.R3))
	}
}

func TestRandDeterminism(t *testing.T) {
	run := func() uint64 {
		p := mustAssemble(t, func(a *isa.Assembler) {
			a.Label("main")
			a.Rand(isa.R1)
			a.Rand(isa.R2)
			a.Add(isa.R1, isa.R1, isa.R2)
			a.Halt()
		})
		m := New(Options{Seed: 1234})
		if err := m.Run(p, "main"); err != nil {
			t.Fatal(err)
		}
		return m.Hart(0).Reg(isa.R1)
	}
	if run() != run() {
		t.Fatal("RAND not deterministic for a fixed seed")
	}
}

func TestAESInstructions(t *testing.T) {
	const keyAddr, ptAddr, ctAddr = 0x2000, 0x3000, 0x3100
	key := make([]byte, 16)
	for i := range key {
		key[i] = byte(i * 7)
	}
	rks, err := aes.ExpandKey(key)
	if err != nil {
		t.Fatal(err)
	}
	var pt aes.Block
	for i := range pt {
		pt[i] = byte(0xa0 + i)
	}
	p := mustAssemble(t, func(a *isa.Assembler) {
		a.Label("main")
		a.MovI(isa.R1, keyAddr)
		a.MovI(isa.R2, ptAddr)
		a.MovI(isa.R3, ctAddr)
		a.VLd(isa.V0, isa.R2, 0)
		a.VXor(isa.V0, isa.R1, 0) // whitening
		for r := 1; r <= 9; r++ {
			a.AesEnc(isa.V0, isa.R1, int64(16*r))
		}
		a.AesEncLast(isa.V0, isa.R1, 160)
		a.VSt(isa.R3, 0, isa.V0)
		a.Halt()
	})
	m := New(Options{})
	for r, rk := range rks {
		m.Mem.Write128(keyAddr+uint64(16*r), rk)
	}
	m.Mem.Write128(ptAddr, pt)
	if err := m.Run(p, "main"); err != nil {
		t.Fatal(err)
	}
	want := aes.Encrypt(rks, pt)
	if got := m.Mem.Read128(ctAddr); got != want {
		t.Fatalf("ISA AES mismatch:\n got % x\nwant % x", got, want)
	}
}

func TestStepLimit(t *testing.T) {
	p := mustAssemble(t, func(a *isa.Assembler) {
		a.Label("main")
		a.Label("spin")
		a.Jmp("spin")
	})
	m := New(Options{StepLimit: 1000})
	err := m.Run(p, "main")
	if err == nil || !strings.Contains(err.Error(), "step limit") {
		t.Fatalf("want step-limit error, got %v", err)
	}
}

func TestRunUnknownSymbol(t *testing.T) {
	p := mustAssemble(t, func(a *isa.Assembler) {
		a.Label("main")
		a.Halt()
	})
	m := New(Options{})
	if err := m.Run(p, "nope"); err == nil {
		t.Fatal("unknown symbol must error")
	}
}

func TestSkylakePHRSize(t *testing.T) {
	m := New(Options{Arch: bpu.Skylake})
	if m.Hart(0).PHR.Size() != 93 {
		t.Fatalf("Skylake PHR %d, want 93", m.Hart(0).PHR.Size())
	}
}
