// Package snapstore is the persistent tier of the harness warm-state cache:
// a content-addressed, on-disk store of machine snapshots (plus, for
// phase-level checkpoints, the recovery artifact needed to resume from
// them), living under the daemon's -data-dir. The in-process warm cache
// spills trained entries here and consults it on a miss, so cold processes —
// a restarted standalone daemon, a fresh cluster worker, a new noisebench
// run — restore ~1 ms snapshots instead of re-running ~70 ms training
// phases.
//
// Entries are stored either as full snapshot blobs or as delta chains:
// grid cells that share a training program differ in a few PHT counters and
// the PHR tail, so the harness saves each cell as a sparse XOR delta (the
// wire package's PFWD frame) against the previous cell in its class. Chains
// are depth-bounded at write time (maxChainDepth), with every chain rooted
// in a full-blob anchor; resolution walks the chain under the store lock. A
// corrupt or missing link makes the whole dependent entry unrecoverable, so
// it is dropped and reported as a miss — never a wrong restore. Eviction
// never orphans a chain: before a base is evicted its direct dependents are
// rewritten as full anchors.
//
// Durability and integrity follow the journal's discipline: writes go to a
// temp file and rename into place (a crash never leaves a half-written
// entry under its final name), and every file carries an FNV-1a hash over
// its payload that Load verifies before decoding — a torn or bit-flipped
// file is deleted and reported as a miss, never restored. The embedded
// snapshot section additionally self-verifies through the PFSN envelope's
// content hash (and delta sections through the PFWD envelope's), so a
// mis-addressed blob is structurally unrestorable.
//
// The store is size-capped: Save evicts least-recently-used entries (file
// mtime, which Load refreshes on every hit — the portable spelling of LRU
// by access time) until the configured byte budget holds.
package snapstore

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"pathfinder/internal/core"
	"pathfinder/internal/cpu"
	"pathfinder/internal/wire"
)

// File envelope. Bump the version on any layout change; decoders reject
// other versions (the store is an exchange format between same-version
// binaries, like the snapshot codec it embeds). Version 2 added the entry
// kind, base key, chain depth, and rec-section kind for delta-chained
// entries.
const (
	storeMagic   = "PFWS" // PathFinder Warm Store
	storeVersion = 2
	fileExt      = ".pfws"
	tmpPrefix    = "tmp-"

	// Entry kinds: a full entry embeds a self-contained PFSN snapshot blob;
	// a delta entry embeds a PFWD frame against the PFSN bytes of the entry
	// named by its base key.
	entryFull  = 0
	entryDelta = 1

	// Recovery-artifact section kinds: delta entries may store their rec
	// bytes as a PFWD frame against the base entry's rec — phase-level
	// checkpoints in one chain class recover the same control flow, so their
	// artifacts are near-identical and the rec section would otherwise
	// dominate a delta entry's footprint.
	recNone  = 0 // entry carries no recovery artifact
	recRaw   = 1 // rec section holds raw wire bytes
	recDelta = 2 // rec section holds a PFWD frame against the base's rec

	// maxChainDepth bounds how many delta links may sit between an entry and
	// its full-blob anchor. SaveDelta refuses to extend a chain past this and
	// writes the next full anchor instead, so resolving any entry reads at
	// most maxChainDepth+1 files and a single torn file can orphan at most
	// one bounded chain.
	maxChainDepth = 8

	// DefaultMaxBytes is the byte budget when Open is given none: a few
	// hundred snapshots at the ~1 MiB each the cache-line array costs.
	DefaultMaxBytes = 256 << 20

	// maxFileBytes bounds a single entry read; a snapshot plus recovery
	// artifact is a few MiB at most.
	maxFileBytes = 64 << 20

	// headerProbe is how much of a file the Open scan reads to recover the
	// key, snapshot hash, and chain linkage: envelope + two keys (keys are
	// ~50 bytes).
	headerProbe = 4096
)

// Entry describes one resident store entry, for heartbeat advertisements
// and diagnostics.
type Entry struct {
	Key      string
	SnapHash uint64 // content hash of the embedded snapshot
	Size     int64
	Delta    bool   // stored as a delta against Base
	Base     string // base key for delta entries, "" for full anchors
}

type indexEntry struct {
	path     string
	size     int64
	snapHash uint64
	mtime    time.Time
	kind     byte
	baseKey  string
	depth    uint8
}

// Store is the on-disk snapshot store. All methods are safe for concurrent
// use. The zero value is unusable; use Open.
type Store struct {
	dir      string
	maxBytes int64

	mu      sync.Mutex
	index   map[string]*indexEntry
	bytes   int64
	hits    uint64
	misses  uint64
	puts    uint64
	evicted uint64
}

// Open scans dir (creating it if needed) and indexes every resident entry.
// Unparseable or torn files — including temp files from a crashed writer —
// are removed. A delta entry whose base did not survive stays indexed; its
// first Load fails base resolution and drops it. maxBytes <= 0 selects
// DefaultMaxBytes.
func Open(dir string, maxBytes int64) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("snapstore: empty directory")
	}
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("snapstore: %w", err)
	}
	s := &Store{dir: dir, maxBytes: maxBytes, index: make(map[string]*indexEntry)}
	names, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("snapstore: %w", err)
	}
	for _, de := range names {
		name := de.Name()
		path := filepath.Join(dir, name)
		if strings.HasPrefix(name, tmpPrefix) {
			_ = os.Remove(path) // torn write from a crashed process
			continue
		}
		if !strings.HasSuffix(name, fileExt) || de.IsDir() {
			continue
		}
		h, err := probeHeader(path)
		if err != nil {
			_ = os.Remove(path)
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		s.index[h.key] = &indexEntry{
			path: path, size: info.Size(), snapHash: h.snapHash, mtime: info.ModTime(),
			kind: h.kind, baseKey: h.baseKey, depth: h.depth,
		}
		s.bytes += info.Size()
	}
	s.gcLocked()
	return s, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

type header struct {
	key      string
	snapHash uint64
	kind     byte
	baseKey  string
	depth    uint8
}

// probeHeader reads just enough of a file to recover its key, snapshot
// hash, and chain linkage without decoding the body. The payload hash is
// NOT verified here — Load does that on every read — so Open stays cheap on
// big stores.
func probeHeader(path string) (header, error) {
	f, err := os.Open(path)
	if err != nil {
		return header{}, err
	}
	defer f.Close()
	buf := make([]byte, headerProbe)
	n, _ := f.Read(buf)
	if n < 4 || string(buf[:4]) != storeMagic {
		return header{}, fmt.Errorf("snapstore: %s lacks %q magic", path, storeMagic)
	}
	r := wire.NewReader(buf[4:n])
	if v := r.U16(); v != storeVersion {
		return header{}, fmt.Errorf("snapstore: %s version %d, this build speaks %d", path, v, storeVersion)
	}
	_ = r.U64() // payload hash; verified by Load
	var h header
	h.key = r.String()
	h.snapHash = r.U64()
	h.kind = r.U8()
	h.baseKey = r.String()
	h.depth = r.U8()
	if err := r.Err(); err != nil {
		return header{}, err
	}
	if h.key == "" {
		return header{}, fmt.Errorf("snapstore: %s has an empty key", path)
	}
	if h.kind != entryFull && h.kind != entryDelta {
		return header{}, fmt.Errorf("snapstore: %s has unknown entry kind %d", path, h.kind)
	}
	return h, nil
}

// fnv1a folds b FNV-1a style — the same hash the snapshot envelope uses.
func fnv1a(b []byte) uint64 {
	h := uint64(0xcbf29ce484222325)
	for _, x := range b {
		h = (h ^ uint64(x)) * 0x100000001b3
	}
	return h
}

// fileName derives the entry file name from the key's FNV-1a hash. Key
// equality is re-verified on Load, so a (vanishingly unlikely) hash
// collision degrades to a miss, never a wrong restore.
func fileName(key string) string {
	return fmt.Sprintf("%016x%s", fnv1a([]byte(key)), fileExt)
}

// bufPool recycles encode scratch — snapshot sections, delta frames, and
// whole entry files — across saves and anchor rewrites, keeping the spill
// path allocation-light (buffers are snapshot-sized, ~1 MiB).
var bufPool = sync.Pool{New: func() any { return new([]byte) }}

func getBuf() *[]byte  { return bufPool.Get().(*[]byte) }
func putBuf(b *[]byte) { bufPool.Put(b) }

// encodeEntry appends one rendered entry file to dst: envelope, then the
// hashed payload. snapBlob is PFSN bytes for a full entry, a PFWD frame for
// a delta entry; recBytes is raw wire bytes or a PFWD frame per recKind.
func encodeEntry(dst []byte, key string, snapHash uint64, kind byte, baseKey string, depth uint8, snapBlob, recBytes []byte, recKind byte) []byte {
	w := wire.NewWriterBuf(dst)
	w.Raw([]byte(storeMagic))
	w.U16(storeVersion)
	w.U64(0) // payload hash, patched below
	w.String(key)
	w.U64(snapHash)
	w.U8(kind)
	w.String(baseKey)
	w.U8(depth)
	w.U8(recKind)
	w.U32(uint32(len(snapBlob)))
	w.Raw(snapBlob)
	if recKind != recNone {
		w.U32(uint32(len(recBytes)))
		w.Raw(recBytes)
	}
	out := w.Bytes()
	binary.LittleEndian.PutUint64(out[6:14], fnv1a(out[14:]))
	return out
}

// parsedEntry is one verified entry file, sectioned. snapBlob and recBytes
// alias the file data.
type parsedEntry struct {
	key      string
	snapHash uint64
	kind     byte
	baseKey  string
	depth    uint8
	recKind  byte
	snapBlob []byte // PFSN (full) or PFWD (delta)
	recBytes []byte // raw wire bytes (recRaw) or PFWD frame (recDelta)
}

// parseEntry verifies the envelope and payload hash of one entry file and
// splits it into sections. It validates structure — kind, linkage, depth
// bound, section lengths — but does not resolve delta chains or decode the
// snapshot; materialization does that.
func parseEntry(data []byte, wantKey string) (parsedEntry, error) {
	var p parsedEntry
	if len(data) < 4 || string(data[:4]) != storeMagic {
		return p, fmt.Errorf("snapstore: blob lacks %q magic", storeMagic)
	}
	r := wire.NewReader(data[4:])
	if v := r.U16(); v != storeVersion {
		return p, fmt.Errorf("snapstore: blob version %d, this build speaks %d", v, storeVersion)
	}
	wantHash := r.U64()
	if got := fnv1a(r.Rest()); got != wantHash {
		return p, fmt.Errorf("snapstore: payload hash %016x does not match envelope %016x (torn or corrupt file)", got, wantHash)
	}
	p.key = r.String()
	if p.key != wantKey {
		return p, fmt.Errorf("snapstore: blob holds key %q, want %q", p.key, wantKey)
	}
	p.snapHash = r.U64()
	p.kind = r.U8()
	p.baseKey = r.String()
	p.depth = r.U8()
	p.recKind = r.U8()
	snapLen := r.Len(maxFileBytes)
	if err := r.Err(); err != nil {
		return p, err
	}
	if r.Remaining() < snapLen {
		return p, wire.ErrShort
	}
	p.snapBlob = r.Rest()[:snapLen]
	r.Skip(snapLen)
	if p.recKind != recNone {
		recLen := r.Len(maxFileBytes)
		if err := r.Err(); err != nil {
			return p, err
		}
		if r.Remaining() < recLen {
			return p, wire.ErrShort
		}
		p.recBytes = r.Rest()[:recLen]
		r.Skip(recLen)
	}
	if r.Remaining() != 0 {
		return p, fmt.Errorf("snapstore: blob has %d trailing bytes", r.Remaining())
	}
	switch p.kind {
	case entryFull:
		if p.baseKey != "" || p.depth != 0 {
			return p, fmt.Errorf("snapstore: full entry %q carries chain linkage", p.key)
		}
		if p.recKind == recDelta {
			return p, fmt.Errorf("snapstore: full entry %q has a rec delta but no base", p.key)
		}
	case entryDelta:
		if p.baseKey == "" || p.baseKey == p.key || p.depth == 0 || p.depth > maxChainDepth {
			return p, fmt.Errorf("snapstore: delta entry %q has invalid linkage (base %q, depth %d)", p.key, p.baseKey, p.depth)
		}
	default:
		return p, fmt.Errorf("snapstore: unknown entry kind %d", p.kind)
	}
	if p.recKind > recDelta {
		return p, fmt.Errorf("snapstore: unknown rec kind %d", p.recKind)
	}
	return p, nil
}

// readEntry reads and structurally verifies the file behind an index entry.
func (s *Store) readEntry(key string, e *indexEntry) (parsedEntry, error) {
	data, err := os.ReadFile(e.path)
	if err != nil {
		return parsedEntry{}, err
	}
	if int64(len(data)) > maxFileBytes {
		return parsedEntry{}, fmt.Errorf("snapstore: %s exceeds the %d-byte entry bound", e.path, int64(maxFileBytes))
	}
	return parseEntry(data, key)
}

// resolveBlobLocked materializes the PFSN snapshot section of the entry
// stored under key, walking its delta chain down to the full anchor. budget
// bounds the walk (chains are depth-bounded at write time, so a deeper one
// is structurally corrupt). Any failure — missing entry, torn file, corrupt
// or missing base — drops the unrecoverable entry and reports false, so a
// broken chain degrades to a bounded set of misses.
func (s *Store) resolveBlobLocked(key string, budget int) ([]byte, bool) {
	if budget < 0 {
		return nil, false
	}
	e, ok := s.index[key]
	if !ok {
		return nil, false
	}
	p, err := s.readEntry(key, e)
	if err != nil {
		s.dropLocked(key, e)
		return nil, false
	}
	if p.kind == entryFull {
		return append([]byte(nil), p.snapBlob...), true
	}
	base, ok := s.resolveBlobLocked(p.baseKey, budget-1)
	if !ok {
		s.dropLocked(key, e)
		return nil, false
	}
	out, err := wire.DecodeDelta(base, p.snapBlob)
	if err != nil {
		s.dropLocked(key, e)
		return nil, false
	}
	return out, true
}

// resolveRecLocked materializes the raw recovery-artifact wire bytes of the
// entry stored under key, walking rec deltas down the same chain the
// snapshot section uses. An entry with no rec resolves to (nil, true); any
// failure drops the unrecoverable entry and reports false, mirroring
// resolveBlobLocked.
func (s *Store) resolveRecLocked(key string, budget int) ([]byte, bool) {
	if budget < 0 {
		return nil, false
	}
	e, ok := s.index[key]
	if !ok {
		return nil, false
	}
	p, err := s.readEntry(key, e)
	if err != nil {
		s.dropLocked(key, e)
		return nil, false
	}
	switch p.recKind {
	case recNone:
		return nil, true
	case recRaw:
		return append([]byte(nil), p.recBytes...), true
	}
	base, ok := s.resolveRecLocked(p.baseKey, budget-1)
	if !ok || base == nil {
		s.dropLocked(key, e)
		return nil, false
	}
	out, err := wire.DecodeDelta(base, p.recBytes)
	if err != nil {
		s.dropLocked(key, e)
		return nil, false
	}
	return out, true
}

// Load returns the entry stored under key, verifying the payload hash, the
// delta chain (for chained entries), and the embedded snapshot's own
// envelope before anything is restored. A corrupt file — or one whose chain
// can no longer be resolved — is deleted and reported as a miss. A hit
// refreshes the entry's recency stamp.
func (s *Store) Load(key string) (*cpu.Snapshot, *core.ExtendedResult, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.index[key]
	if !ok {
		s.misses++
		return nil, nil, false
	}
	snap, rec, err := s.materializeLocked(key, e)
	if err != nil {
		if cur, ok := s.index[key]; ok && cur == e {
			s.dropLocked(key, e)
		}
		s.misses++
		return nil, nil, false
	}
	now := time.Now()
	if os.Chtimes(e.path, now, now) == nil {
		e.mtime = now
	}
	s.hits++
	return snap, rec, true
}

// materializeLocked reads, chain-resolves, and fully decodes one entry.
func (s *Store) materializeLocked(key string, e *indexEntry) (*cpu.Snapshot, *core.ExtendedResult, error) {
	p, err := s.readEntry(key, e)
	if err != nil {
		return nil, nil, err
	}
	blob := p.snapBlob
	if p.kind == entryDelta {
		base, ok := s.resolveBlobLocked(p.baseKey, maxChainDepth)
		if !ok {
			return nil, nil, fmt.Errorf("snapstore: delta base %q unavailable", p.baseKey)
		}
		blob, err = wire.DecodeDelta(base, p.snapBlob)
		if err != nil {
			return nil, nil, err
		}
	}
	snap, err := cpu.DecodeSnapshot(blob)
	if err != nil {
		return nil, nil, err
	}
	if snap.Hash() != p.snapHash {
		return nil, nil, fmt.Errorf("snapstore: snapshot hash %016x does not match header %016x", snap.Hash(), p.snapHash)
	}
	recBytes := p.recBytes
	if p.recKind == recDelta {
		baseRec, ok := s.resolveRecLocked(p.baseKey, maxChainDepth)
		if !ok || baseRec == nil {
			return nil, nil, fmt.Errorf("snapstore: rec delta base %q unavailable", p.baseKey)
		}
		recBytes, err = wire.DecodeDelta(baseRec, p.recBytes)
		if err != nil {
			return nil, nil, err
		}
	}
	var rec *core.ExtendedResult
	if p.recKind != recNone {
		rr := wire.NewReader(recBytes)
		rec = core.DecodeWireExtendedResult(rr)
		if err := rr.Err(); err != nil {
			return nil, nil, err
		}
		if rr.Remaining() != 0 {
			return nil, nil, fmt.Errorf("snapstore: recovery section has %d trailing bytes", rr.Remaining())
		}
	}
	return snap, rec, nil
}

// LoadSnapshotBlob returns the PFSN-encoded snapshot section of the entry
// stored under key — chain-resolved to self-contained bytes, after
// verifying every file payload hash along the way. The cluster worker
// serves peer snapshot fetches with this, no machine-decode round trip.
func (s *Store) LoadSnapshotBlob(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.resolveBlobLocked(key, maxChainDepth)
}

// Save persists an entry under key as a full snapshot blob. The store is
// content-addressed — a key fully describes the machine state it names — so
// the first write wins and a re-save of a resident key is a no-op. The
// write is temp+rename atomic; over-budget entries are evicted
// least-recently-used first.
func (s *Store) Save(key string, snap *cpu.Snapshot, rec *core.ExtendedResult) {
	if key == "" || snap == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.index[key]; ok {
		return
	}
	s.saveFullLocked(key, snap, rec)
}

// SaveDelta persists an entry under key as a delta against the resident
// entry named baseKey, chaining warm grid cells that differ in a few PHT
// counters into a fraction of their full-blob footprint. It degrades to a
// full Save — the chain's next anchor — whenever the delta cannot or should
// not be taken: base missing or unresolvable, chain at its depth bound,
// self-reference, or a delta no smaller than the full blob. Implements the
// harness DeltaSaver extension.
func (s *Store) SaveDelta(key string, snap *cpu.Snapshot, rec *core.ExtendedResult, baseKey string) {
	if key == "" || snap == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.index[key]; ok {
		return
	}
	be, ok := s.index[baseKey]
	if !ok || baseKey == key || int(be.depth) >= maxChainDepth {
		s.saveFullLocked(key, snap, rec)
		return
	}
	base, ok := s.resolveBlobLocked(baseKey, maxChainDepth)
	if !ok {
		s.saveFullLocked(key, snap, rec)
		return
	}
	snapBuf := getBuf()
	defer putBuf(snapBuf)
	target, err := snap.AppendBinary((*snapBuf)[:0])
	*snapBuf = target
	if err != nil {
		return
	}
	deltaBuf := getBuf()
	defer putBuf(deltaBuf)
	delta := wire.AppendDelta((*deltaBuf)[:0], base, target)
	*deltaBuf = delta
	recBytes, recKind, recBuf := encodeRec(rec)
	if recBuf != nil {
		defer putBuf(recBuf)
	}
	if len(delta) >= len(target) {
		s.writeLocked(key, snap.Hash(), entryFull, "", 0, target, recBytes, recKind)
		return
	}
	// The rec section rides the same chain: phase-level checkpoints in one
	// class recover near-identical artifacts, so when the base carries a rec
	// too this entry's is stored as a PFWD delta against it.
	if recKind == recRaw {
		baseRec, ok := s.resolveRecLocked(baseKey, maxChainDepth)
		switch {
		case ok && baseRec != nil:
			rdBuf := getBuf()
			defer putBuf(rdBuf)
			rd := wire.AppendDelta((*rdBuf)[:0], baseRec, recBytes)
			*rdBuf = rd
			if len(rd) < len(recBytes) {
				recBytes, recKind = rd, recDelta
			}
		case s.index[baseKey] == nil:
			// Rec resolution dropped the base (torn file mid-chain); anchor
			// instead of writing a delta against a key that just vanished.
			s.writeLocked(key, snap.Hash(), entryFull, "", 0, target, recBytes, recKind)
			return
		}
	}
	s.writeLocked(key, snap.Hash(), entryDelta, baseKey, be.depth+1, delta, recBytes, recKind)
}

// saveFullLocked encodes snap and writes it as a full-blob entry.
func (s *Store) saveFullLocked(key string, snap *cpu.Snapshot, rec *core.ExtendedResult) {
	snapBuf := getBuf()
	defer putBuf(snapBuf)
	blob, err := snap.AppendBinary((*snapBuf)[:0])
	*snapBuf = blob
	if err != nil {
		return
	}
	recBytes, recKind, recBuf := encodeRec(rec)
	if recBuf != nil {
		defer putBuf(recBuf)
	}
	s.writeLocked(key, snap.Hash(), entryFull, "", 0, blob, recBytes, recKind)
}

// encodeRec renders a recovery artifact to wire bytes in a pooled buffer.
// The caller returns recBuf to the pool when done with the bytes; a nil rec
// yields (nil, recNone, nil).
func encodeRec(rec *core.ExtendedResult) (recBytes []byte, recKind byte, recBuf *[]byte) {
	if rec == nil {
		return nil, recNone, nil
	}
	recBuf = getBuf()
	rw := wire.NewWriterBuf((*recBuf)[:0])
	rec.EncodeWire(rw)
	recBytes = rw.Bytes()
	*recBuf = recBytes
	return recBytes, recRaw, recBuf
}

// writeLocked renders and atomically writes one new entry file, then
// indexes it and enforces the byte budget.
func (s *Store) writeLocked(key string, snapHash uint64, kind byte, baseKey string, depth uint8, snapBlob, recBytes []byte, recKind byte) {
	fileBuf := getBuf()
	defer putBuf(fileBuf)
	data := encodeEntry((*fileBuf)[:0], key, snapHash, kind, baseKey, depth, snapBlob, recBytes, recKind)
	*fileBuf = data
	path := filepath.Join(s.dir, fileName(key))
	if err := s.writeFile(path, data); err != nil {
		return
	}
	s.index[key] = &indexEntry{
		path: path, size: int64(len(data)), snapHash: snapHash, mtime: time.Now(),
		kind: kind, baseKey: baseKey, depth: depth,
	}
	s.bytes += int64(len(data))
	s.puts++
	s.gcLocked()
}

// writeFile writes data to a temp file in the store directory and renames
// it over path — the atomic, crash-safe write every entry goes through.
func (s *Store) writeFile(path string, data []byte) error {
	tmp, err := os.CreateTemp(s.dir, tmpPrefix+"*")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		_ = os.Remove(tmp.Name())
		if werr != nil {
			return werr
		}
		return cerr
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		_ = os.Remove(tmp.Name())
		return err
	}
	return nil
}

// dropLocked removes one entry and its file.
func (s *Store) dropLocked(key string, e *indexEntry) {
	_ = os.Remove(e.path)
	delete(s.index, key)
	s.bytes -= e.size
}

// gcLocked evicts least-recently-used entries until the byte budget holds.
// Before a base entry goes, its direct delta dependents are rewritten as
// full anchors (grandchildren re-root on the promoted child), so eviction
// never orphans a chain.
func (s *Store) gcLocked() {
	if s.bytes <= s.maxBytes {
		return
	}
	type aged struct {
		key string
		e   *indexEntry
	}
	all := make([]aged, 0, len(s.index))
	for k, e := range s.index {
		all = append(all, aged{k, e})
	}
	sort.Slice(all, func(i, j int) bool {
		if !all[i].e.mtime.Equal(all[j].e.mtime) {
			return all[i].e.mtime.Before(all[j].e.mtime)
		}
		return all[i].key < all[j].key
	})
	for _, a := range all {
		if s.bytes <= s.maxBytes {
			break
		}
		if cur, ok := s.index[a.key]; !ok || cur != a.e {
			continue // already dropped as part of a broken chain
		}
		s.promoteDependentsLocked(a.key)
		s.dropLocked(a.key, a.e)
		s.evicted++
	}
}

// promoteDependentsLocked rewrites every entry delta-chained directly on
// baseKey as a full-blob anchor, while the base is still resident to
// resolve against. A dependent whose bytes cannot be materialized (torn
// file, already-broken chain) is dropped instead — either way, nothing
// references baseKey afterwards.
func (s *Store) promoteDependentsLocked(baseKey string) {
	var deps []string
	for k, e := range s.index {
		if e.kind == entryDelta && e.baseKey == baseKey {
			deps = append(deps, k)
		}
	}
	sort.Strings(deps)
	for _, k := range deps {
		e, ok := s.index[k]
		if !ok {
			continue
		}
		p, err := s.readEntry(k, e)
		if err != nil {
			s.dropLocked(k, e)
			continue
		}
		base, ok := s.resolveBlobLocked(p.baseKey, maxChainDepth)
		if !ok {
			if cur, ok := s.index[k]; ok && cur == e {
				s.dropLocked(k, e)
			}
			continue
		}
		blob, err := wire.DecodeDelta(base, p.snapBlob)
		if err != nil {
			s.dropLocked(k, e)
			continue
		}
		// The anchor must be self-contained: a rec stored as a delta is
		// materialized to raw bytes while its base is still resident.
		recBytes, recKind := p.recBytes, p.recKind
		if p.recKind == recDelta {
			baseRec, ok := s.resolveRecLocked(p.baseKey, maxChainDepth)
			if !ok || baseRec == nil {
				if cur, ok := s.index[k]; ok && cur == e {
					s.dropLocked(k, e)
				}
				continue
			}
			recBytes, err = wire.DecodeDelta(baseRec, p.recBytes)
			if err != nil {
				s.dropLocked(k, e)
				continue
			}
			recKind = recRaw
		}
		s.rewriteAnchorLocked(k, e, p, blob, recBytes, recKind)
	}
}

// rewriteAnchorLocked atomically replaces a delta entry's file with a
// full-blob anchor holding the same snapshot and recovery bytes, updating
// the index in place. On any write failure the entry is dropped — it was
// about to lose its base.
func (s *Store) rewriteAnchorLocked(key string, e *indexEntry, p parsedEntry, snapBlob, recBytes []byte, recKind byte) {
	fileBuf := getBuf()
	defer putBuf(fileBuf)
	data := encodeEntry((*fileBuf)[:0], key, p.snapHash, entryFull, "", 0, snapBlob, recBytes, recKind)
	*fileBuf = data
	if err := s.writeFile(e.path, data); err != nil {
		s.dropLocked(key, e)
		return
	}
	s.bytes += int64(len(data)) - e.size
	e.size = int64(len(data))
	e.kind, e.baseKey, e.depth = entryFull, "", 0
	if info, err := os.Stat(e.path); err == nil {
		e.mtime = info.ModTime()
	}
}

// Entries lists the resident entries, unordered.
func (s *Store) Entries() []Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Entry, 0, len(s.index))
	for k, e := range s.index {
		out = append(out, Entry{
			Key: k, SnapHash: e.snapHash, Size: e.size,
			Delta: e.kind == entryDelta, Base: e.baseKey,
		})
	}
	return out
}

// Stats reports cumulative counters and the current footprint. The
// signature matches the harness SnapStore interface, so a *Store plugs into
// harness.SetSnapStore directly.
func (s *Store) Stats() (hits, misses, puts, evictions uint64, bytes int64, entries int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hits, s.misses, s.puts, s.evicted, s.bytes, len(s.index)
}
