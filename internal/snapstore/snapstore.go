// Package snapstore is the persistent tier of the harness warm-state cache:
// a content-addressed, on-disk store of machine snapshots (plus, for
// phase-level checkpoints, the recovery artifact needed to resume from
// them), living under the daemon's -data-dir. The in-process warm cache
// spills trained entries here and consults it on a miss, so cold processes —
// a restarted standalone daemon, a fresh cluster worker, a new noisebench
// run — restore ~1 ms snapshots instead of re-running ~70 ms training
// phases.
//
// Durability and integrity follow the journal's discipline: writes go to a
// temp file and rename into place (a crash never leaves a half-written
// entry under its final name), and every file carries an FNV-1a hash over
// its payload that Load verifies before decoding — a torn or bit-flipped
// file is deleted and reported as a miss, never restored. The embedded
// snapshot section additionally self-verifies through the PFSN envelope's
// content hash, so a mis-addressed blob is structurally unrestorable.
//
// The store is size-capped: Save evicts least-recently-used entries (file
// mtime, which Load refreshes on every hit — the portable spelling of LRU
// by access time) until the configured byte budget holds.
package snapstore

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"pathfinder/internal/core"
	"pathfinder/internal/cpu"
	"pathfinder/internal/wire"
)

// File envelope. Bump the version on any layout change; decoders reject
// other versions (the store is an exchange format between same-version
// binaries, like the snapshot codec it embeds).
const (
	storeMagic   = "PFWS" // PathFinder Warm Store
	storeVersion = 1
	fileExt      = ".pfws"
	tmpPrefix    = "tmp-"

	// DefaultMaxBytes is the byte budget when Open is given none: a few
	// hundred snapshots at the ~1 MiB each the cache-line array costs.
	DefaultMaxBytes = 256 << 20

	// maxFileBytes bounds a single entry read; a snapshot plus recovery
	// artifact is a few MiB at most.
	maxFileBytes = 64 << 20

	// headerProbe is how much of a file the Open scan reads to recover the
	// key and snapshot hash: envelope + key (keys are ~50 bytes).
	headerProbe = 4096
)

// Entry describes one resident store entry, for heartbeat advertisements
// and diagnostics.
type Entry struct {
	Key      string
	SnapHash uint64 // content hash of the embedded snapshot
	Size     int64
}

type indexEntry struct {
	path     string
	size     int64
	snapHash uint64
	mtime    time.Time
}

// Store is the on-disk snapshot store. All methods are safe for concurrent
// use. The zero value is unusable; use Open.
type Store struct {
	dir      string
	maxBytes int64

	mu      sync.Mutex
	index   map[string]*indexEntry
	bytes   int64
	hits    uint64
	misses  uint64
	puts    uint64
	evicted uint64
}

// Open scans dir (creating it if needed) and indexes every resident entry.
// Unparseable or torn files — including temp files from a crashed writer —
// are removed. maxBytes <= 0 selects DefaultMaxBytes.
func Open(dir string, maxBytes int64) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("snapstore: empty directory")
	}
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("snapstore: %w", err)
	}
	s := &Store{dir: dir, maxBytes: maxBytes, index: make(map[string]*indexEntry)}
	names, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("snapstore: %w", err)
	}
	for _, de := range names {
		name := de.Name()
		path := filepath.Join(dir, name)
		if strings.HasPrefix(name, tmpPrefix) {
			_ = os.Remove(path) // torn write from a crashed process
			continue
		}
		if !strings.HasSuffix(name, fileExt) || de.IsDir() {
			continue
		}
		key, snapHash, err := probeHeader(path)
		if err != nil {
			_ = os.Remove(path)
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		s.index[key] = &indexEntry{path: path, size: info.Size(), snapHash: snapHash, mtime: info.ModTime()}
		s.bytes += info.Size()
	}
	s.gcLocked()
	return s, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// probeHeader reads just enough of a file to recover its key and snapshot
// hash without decoding the body. The payload hash is NOT verified here —
// Load does that on every read — so Open stays cheap on big stores.
func probeHeader(path string) (key string, snapHash uint64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return "", 0, err
	}
	defer f.Close()
	buf := make([]byte, headerProbe)
	n, _ := f.Read(buf)
	if n < 4 || string(buf[:4]) != storeMagic {
		return "", 0, fmt.Errorf("snapstore: %s lacks %q magic", path, storeMagic)
	}
	r := wire.NewReader(buf[4:n])
	if v := r.U16(); v != storeVersion {
		return "", 0, fmt.Errorf("snapstore: %s version %d, this build speaks %d", path, v, storeVersion)
	}
	_ = r.U64() // payload hash; verified by Load
	key = r.String()
	snapHash = r.U64()
	if err := r.Err(); err != nil {
		return "", 0, err
	}
	if key == "" {
		return "", 0, fmt.Errorf("snapstore: %s has an empty key", path)
	}
	return key, snapHash, nil
}

// fnv1a folds b FNV-1a style — the same hash the snapshot envelope uses.
func fnv1a(b []byte) uint64 {
	h := uint64(0xcbf29ce484222325)
	for _, x := range b {
		h = (h ^ uint64(x)) * 0x100000001b3
	}
	return h
}

// fileName derives the entry file name from the key's FNV-1a hash. Key
// equality is re-verified on Load, so a (vanishingly unlikely) hash
// collision degrades to a miss, never a wrong restore.
func fileName(key string) string {
	return fmt.Sprintf("%016x%s", fnv1a([]byte(key)), fileExt)
}

// encode renders one entry file: envelope, then the hashed payload.
func encode(key string, snap *cpu.Snapshot, rec *core.ExtendedResult) ([]byte, error) {
	blob, err := snap.MarshalBinary()
	if err != nil {
		return nil, err
	}
	p := wire.NewWriter(len(blob) + 4096)
	p.String(key)
	p.U64(snap.Hash())
	p.Bool(rec != nil)
	p.U32(uint32(len(blob)))
	p.Raw(blob)
	if rec != nil {
		rw := &wire.Writer{}
		rec.EncodeWire(rw)
		p.U32(uint32(rw.Len()))
		p.Raw(rw.Bytes())
	}
	payload := p.Bytes()

	w := wire.NewWriter(len(payload) + 16)
	w.Raw([]byte(storeMagic))
	w.U16(storeVersion)
	w.U64(fnv1a(payload))
	w.Raw(payload)
	return w.Bytes(), nil
}

// decode parses and verifies one entry file.
func decode(data []byte, wantKey string) (snap *cpu.Snapshot, rec *core.ExtendedResult, err error) {
	if len(data) < 4 || string(data[:4]) != storeMagic {
		return nil, nil, fmt.Errorf("snapstore: blob lacks %q magic", storeMagic)
	}
	r := wire.NewReader(data[4:])
	if v := r.U16(); v != storeVersion {
		return nil, nil, fmt.Errorf("snapstore: blob version %d, this build speaks %d", v, storeVersion)
	}
	wantHash := r.U64()
	payload := r.Rest()
	if got := fnv1a(payload); got != wantHash {
		return nil, nil, fmt.Errorf("snapstore: payload hash %016x does not match envelope %016x (torn or corrupt file)", got, wantHash)
	}
	key := r.String()
	if key != wantKey {
		return nil, nil, fmt.Errorf("snapstore: blob holds key %q, want %q", key, wantKey)
	}
	wantSnapHash := r.U64()
	hasRec := r.Bool()
	snapLen := r.Len(maxFileBytes)
	if err := r.Err(); err != nil {
		return nil, nil, err
	}
	if r.Remaining() < snapLen {
		return nil, nil, wire.ErrShort
	}
	snap, err = cpu.DecodeSnapshot(r.Rest()[:snapLen])
	if err != nil {
		return nil, nil, err
	}
	if snap.Hash() != wantSnapHash {
		return nil, nil, fmt.Errorf("snapstore: snapshot hash %016x does not match header %016x", snap.Hash(), wantSnapHash)
	}
	r.Skip(snapLen)
	if hasRec {
		recLen := r.Len(maxFileBytes)
		if err := r.Err(); err != nil {
			return nil, nil, err
		}
		if r.Remaining() < recLen {
			return nil, nil, wire.ErrShort
		}
		rr := wire.NewReader(r.Rest()[:recLen])
		rec = core.DecodeWireExtendedResult(rr)
		if err := rr.Err(); err != nil {
			return nil, nil, err
		}
		if rr.Remaining() != 0 {
			return nil, nil, fmt.Errorf("snapstore: recovery section has %d trailing bytes", rr.Remaining())
		}
		r.Skip(recLen)
	}
	if r.Remaining() != 0 {
		return nil, nil, fmt.Errorf("snapstore: blob has %d trailing bytes", r.Remaining())
	}
	return snap, rec, nil
}

// Load returns the entry stored under key, verifying the payload hash and
// the embedded snapshot's own envelope before anything is restored. A
// corrupt file is deleted and reported as a miss. A hit refreshes the
// entry's recency stamp.
func (s *Store) Load(key string) (*cpu.Snapshot, *core.ExtendedResult, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.index[key]
	if !ok {
		s.misses++
		return nil, nil, false
	}
	data, err := os.ReadFile(e.path)
	if err == nil && int64(len(data)) > maxFileBytes {
		err = fmt.Errorf("snapstore: %s exceeds the %d-byte entry bound", e.path, int64(maxFileBytes))
	}
	var snap *cpu.Snapshot
	var rec *core.ExtendedResult
	if err == nil {
		snap, rec, err = decode(data, key)
	}
	if err != nil {
		s.dropLocked(key, e)
		s.misses++
		return nil, nil, false
	}
	now := time.Now()
	if os.Chtimes(e.path, now, now) == nil {
		e.mtime = now
	}
	s.hits++
	return snap, rec, true
}

// LoadSnapshotBlob returns the raw PFSN-encoded snapshot section of the
// entry stored under key, after verifying the file's payload hash — the
// cluster worker serves peer snapshot fetches straight from the store with
// this, no decode round trip.
func (s *Store) LoadSnapshotBlob(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.index[key]
	if !ok {
		return nil, false
	}
	data, err := os.ReadFile(e.path)
	if err != nil || len(data) < 4 || string(data[:4]) != storeMagic {
		return nil, false
	}
	r := wire.NewReader(data[4:])
	if v := r.U16(); v != storeVersion {
		return nil, false
	}
	wantHash := r.U64()
	if fnv1a(r.Rest()) != wantHash {
		s.dropLocked(key, e)
		return nil, false
	}
	if k := r.String(); k != key {
		return nil, false
	}
	_ = r.U64()  // snapshot hash
	_ = r.Bool() // hasRec
	n := r.Len(maxFileBytes)
	if r.Err() != nil || r.Remaining() < n {
		s.dropLocked(key, e)
		return nil, false
	}
	return append([]byte(nil), r.Rest()[:n]...), true
}

// Save persists an entry under key. The store is content-addressed — a key
// fully describes the machine state it names — so the first write wins and
// a re-save of a resident key is a no-op. The write is temp+rename atomic;
// over-budget entries are evicted least-recently-used first.
func (s *Store) Save(key string, snap *cpu.Snapshot, rec *core.ExtendedResult) {
	if key == "" || snap == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.index[key]; ok {
		return
	}
	data, err := encode(key, snap, rec)
	if err != nil {
		return
	}
	tmp, err := os.CreateTemp(s.dir, tmpPrefix+"*")
	if err != nil {
		return
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		_ = os.Remove(tmp.Name())
		return
	}
	path := filepath.Join(s.dir, fileName(key))
	if err := os.Rename(tmp.Name(), path); err != nil {
		_ = os.Remove(tmp.Name())
		return
	}
	s.index[key] = &indexEntry{path: path, size: int64(len(data)), snapHash: snap.Hash(), mtime: time.Now()}
	s.bytes += int64(len(data))
	s.puts++
	s.gcLocked()
}

// dropLocked removes one entry and its file.
func (s *Store) dropLocked(key string, e *indexEntry) {
	_ = os.Remove(e.path)
	delete(s.index, key)
	s.bytes -= e.size
}

// gcLocked evicts least-recently-used entries until the byte budget holds.
func (s *Store) gcLocked() {
	if s.bytes <= s.maxBytes {
		return
	}
	type aged struct {
		key string
		e   *indexEntry
	}
	all := make([]aged, 0, len(s.index))
	for k, e := range s.index {
		all = append(all, aged{k, e})
	}
	sort.Slice(all, func(i, j int) bool {
		if !all[i].e.mtime.Equal(all[j].e.mtime) {
			return all[i].e.mtime.Before(all[j].e.mtime)
		}
		return all[i].key < all[j].key
	})
	for _, a := range all {
		if s.bytes <= s.maxBytes {
			break
		}
		s.dropLocked(a.key, a.e)
		s.evicted++
	}
}

// Entries lists the resident entries, unordered.
func (s *Store) Entries() []Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Entry, 0, len(s.index))
	for k, e := range s.index {
		out = append(out, Entry{Key: k, SnapHash: e.snapHash, Size: e.size})
	}
	return out
}

// Stats reports cumulative counters and the current footprint. The
// signature matches the harness SnapStore interface, so a *Store plugs into
// harness.SetSnapStore directly.
func (s *Store) Stats() (hits, misses, puts, evictions uint64, bytes int64, entries int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hits, s.misses, s.puts, s.evicted, s.bytes, len(s.index)
}
