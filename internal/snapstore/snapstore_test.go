package snapstore

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"pathfinder/internal/bpu"
	"pathfinder/internal/core"
	"pathfinder/internal/cpu"
	"pathfinder/internal/isa"
	"pathfinder/internal/pathfinder"
	"pathfinder/internal/phr"
	"pathfinder/internal/wire"
)

// storeSnapshot builds a trained snapshot the way the warm cache does: run a
// branchy workload, then checkpoint. Distinct seeds give distinct content.
func storeSnapshot(t testing.TB, seed int64) *cpu.Snapshot {
	t.Helper()
	a := isa.NewAssembler()
	a.Label("main")
	a.MovI(isa.R1, 24)
	a.Label("loop")
	a.AddI(isa.R1, isa.R1, -1)
	a.Call("leaf")
	a.Br(isa.NE, isa.R1, isa.R0, "loop")
	a.Halt()
	a.Label("leaf")
	a.Ld(isa.R2, isa.R0, 64)
	a.Ret()
	p, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	m := cpu.New(cpu.Options{Arch: bpu.AlderLake, Seed: seed})
	if err := m.Run(p, "main"); err != nil {
		t.Fatal(err)
	}
	return m.Snapshot()
}

// storeRec builds a synthetic phase-level recovery artifact: every field is
// pure data, so a hand-assembled one exercises the same codec surface as a
// real Extended_Read_PHR product.
func storeRec(t testing.TB) *core.ExtendedResult {
	t.Helper()
	a := isa.NewAssembler()
	a.Label("cap_main")
	a.MovI(isa.R1, 3)
	a.Label("cap_loop")
	a.AddI(isa.R1, isa.R1, -1)
	a.Br(isa.NE, isa.R1, isa.R0, "cap_loop")
	a.Halt()
	p, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	win := phr.New(194)
	win.Update(phr.Footprint(0x40, 0x80))
	win.Update(phr.Footprint(0x90, 0x44))
	return &core.ExtendedResult{
		Window: win,
		Ext:    []phr.Doublet{1, 0, 2, 3, 1},
		Path: pathfinder.Path{
			Steps: []pathfinder.Step{
				{Addr: 0x40, Target: 0x80, Taken: true, Conditional: true, Kind: pathfinder.EdgeCondTaken},
				{Addr: 0x90, Target: 0x44, Taken: true, Kind: pathfinder.EdgeJump},
			},
			Complete: true,
		},
		CaptureProgram: p,
		Entry:          0x40,
		Final:          0x98,
		Probes:         417,
	}
}

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	snap := storeSnapshot(t, 7)
	rec := storeRec(t)
	s.Save("aes-phase1|alderlake|194|0011223344556677|1|0", snap, rec)
	s.Save("aes-warm|alderlake|194|8899aabbccddeeff|0|0", storeSnapshot(t, 11), nil)
	if _, _, _, _, _, n := s.Stats(); n != 2 {
		t.Fatalf("store holds %d entries, want 2", n)
	}

	// A fresh Open over the same directory must rebuild the index from the
	// file headers alone — this is the cold-process restart path.
	s2, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	gotSnap, gotRec, ok := s2.Load("aes-phase1|alderlake|194|0011223344556677|1|0")
	if !ok {
		t.Fatal("phase-1 entry missing after reopen")
	}
	if gotSnap.Hash() != snap.Hash() {
		t.Fatalf("snapshot hash %016x, want %016x", gotSnap.Hash(), snap.Hash())
	}
	if gotRec == nil {
		t.Fatal("recovery artifact missing")
	}
	if gotRec.CaptureProgram.Hash() != rec.CaptureProgram.Hash() ||
		!gotRec.Path.Complete || len(gotRec.Path.Steps) != len(rec.Path.Steps) ||
		gotRec.Entry != rec.Entry || gotRec.Final != rec.Final || gotRec.Probes != rec.Probes {
		t.Fatalf("recovery artifact mangled: %+v", gotRec)
	}
	if !gotRec.Window.Equal(rec.Window) {
		t.Fatal("window register mangled")
	}

	if _, gotRec, ok := s2.Load("aes-warm|alderlake|194|8899aabbccddeeff|0|0"); !ok || gotRec != nil {
		t.Fatalf("rec-free entry: ok=%v rec=%v", ok, gotRec)
	}
	if _, _, ok := s2.Load("absent"); ok {
		t.Fatal("absent key loaded")
	}
	hits, misses, _, _, bytes, _ := s2.Stats()
	if hits != 2 || misses != 1 || bytes <= 0 {
		t.Fatalf("stats hits=%d misses=%d bytes=%d", hits, misses, bytes)
	}
}

// TestStoreFirstWriterWins: the store is content-addressed — a key names one
// machine state — so a second Save under a resident key must not replace it.
func TestStoreFirstWriterWins(t *testing.T) {
	s, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	first := storeSnapshot(t, 1)
	s.Save("k", first, nil)
	s.Save("k", storeSnapshot(t, 2), nil)
	got, _, ok := s.Load("k")
	if !ok || got.Hash() != first.Hash() {
		t.Fatalf("resident entry replaced: ok=%v", ok)
	}
	if _, _, puts, _, _, n := s.Stats(); puts != 1 || n != 1 {
		t.Fatalf("puts=%d entries=%d, want 1/1", puts, n)
	}
}

// TestStoreCorruptionIsAMiss: a bit flip anywhere in the payload must fail
// the FNV check, delete the file, and surface as a miss — never a restore.
func TestStoreCorruptionIsAMiss(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	s.Save("k", storeSnapshot(t, 3), storeRec(t))
	path := filepath.Join(dir, fileName("k"))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := s.Load("k"); ok {
		t.Fatal("corrupt entry restored")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("corrupt file not deleted")
	}
	if _, _, _, _, _, n := s.Stats(); n != 0 {
		t.Fatalf("%d entries after corruption drop", n)
	}
}

// TestStoreOpenSweepsDebris: torn temp files and unparseable entry files
// must be removed by the Open scan, not indexed.
func TestStoreOpenSweepsDebris(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	s.Save("good", storeSnapshot(t, 5), nil)
	// A torn write: a temp file a crashed process left behind.
	torn := filepath.Join(dir, tmpPrefix+"123456")
	if err := os.WriteFile(torn, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	// A truncated entry file that fails the header probe.
	good, err := os.ReadFile(filepath.Join(dir, fileName("good")))
	if err != nil {
		t.Fatal(err)
	}
	trunc := filepath.Join(dir, "00000000deadbeef"+fileExt)
	if err := os.WriteFile(trunc, good[:5], 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, _, _, n := s2.Stats(); n != 1 {
		t.Fatalf("reopened store holds %d entries, want 1", n)
	}
	for _, p := range []string{torn, trunc} {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Fatalf("%s survived the open sweep", p)
		}
	}
}

// TestStoreEvictsLRU: over-budget saves must evict the least-recently-used
// entry, and a Load must count as use.
func TestStoreEvictsLRU(t *testing.T) {
	dir := t.TempDir()
	probe, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	snap := storeSnapshot(t, 9)
	probe.Save("sizer", snap, nil)
	_, _, _, _, size, _ := probe.Stats()
	os.Remove(filepath.Join(dir, fileName("sizer")))

	// Budget for two entries, not three.
	s, err := Open(t.TempDir(), size*2+size/2)
	if err != nil {
		t.Fatal(err)
	}
	s.Save("a", snap, nil)
	time.Sleep(2 * time.Millisecond) // ensure distinct mtimes across filesystems
	s.Save("b", snap, nil)
	time.Sleep(2 * time.Millisecond)
	if _, _, ok := s.Load("a"); !ok { // bump a: now b is the LRU entry
		t.Fatal("entry a missing before eviction")
	}
	time.Sleep(2 * time.Millisecond)
	s.Save("c", snap, nil)

	if _, _, ok := s.Load("b"); ok {
		t.Fatal("LRU entry b survived an over-budget save")
	}
	for _, k := range []string{"a", "c"} {
		if _, _, ok := s.Load(k); !ok {
			t.Fatalf("recently-used entry %q evicted", k)
		}
	}
	if _, _, _, ev, bytes, n := s.Stats(); ev != 1 || n != 2 || bytes > size*2+size/2 {
		t.Fatalf("evictions=%d entries=%d bytes=%d", ev, n, bytes)
	}
}

func TestStoreEntriesAndBlob(t *testing.T) {
	s, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	snap := storeSnapshot(t, 13)
	s.Save("k1", snap, nil)
	entries := s.Entries()
	if len(entries) != 1 || entries[0].Key != "k1" || entries[0].SnapHash != snap.Hash() {
		t.Fatalf("entries: %+v", entries)
	}
	blob, ok := s.LoadSnapshotBlob("k1")
	if !ok {
		t.Fatal("blob missing")
	}
	if !strings.HasPrefix(string(blob), "PFSN") {
		t.Fatal("blob is not a bare snapshot section")
	}
	dec, err := cpu.DecodeSnapshot(blob)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Hash() != snap.Hash() {
		t.Fatalf("blob hash %016x, want %016x", dec.Hash(), snap.Hash())
	}
	if _, ok := s.LoadSnapshotBlob("absent"); ok {
		t.Fatal("absent blob served")
	}
}

// FuzzStoreDecode: arbitrary bytes — seeded with a valid entry, truncations,
// and bit flips — must never panic, and a full entry that parses and decodes
// must carry a self-consistent snapshot.
func FuzzStoreDecode(f *testing.F) {
	dir := f.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		f.Fatal(err)
	}
	s.Save("fuzz-key", storeSnapshot(f, 17), storeRec(f))
	valid, err := os.ReadFile(filepath.Join(dir, fileName("fuzz-key")))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	for _, n := range []int{0, 4, 6, 14, len(valid) / 2, len(valid) - 1} {
		f.Add(append([]byte(nil), valid[:n]...))
	}
	flip := append([]byte(nil), valid...)
	flip[len(flip)/3] ^= 0x01
	f.Add(flip)
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := parseEntry(data, "fuzz-key")
		if err != nil || p.kind != entryFull {
			return
		}
		snap, err := cpu.DecodeSnapshot(p.snapBlob)
		if err == nil && snap == nil {
			t.Fatal("nil snapshot decoded without error")
		}
	})
}

// FuzzDeltaStoreDecode: the delta-entry decode surface — parse, chain
// resolution against a fixed base, PFWD application, snapshot decode — must
// never panic on arbitrary bytes, and anything that survives every
// verification layer must be a structurally valid snapshot.
func FuzzDeltaStoreDecode(f *testing.F) {
	dir := f.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		f.Fatal(err)
	}
	s.Save("base-key", storeSnapshot(f, 19), nil)
	s.SaveDelta("delta-key", storeSnapshot(f, 20), storeRec(f), "base-key")
	if e := s.index["delta-key"]; e == nil || e.kind != entryDelta {
		f.Fatal("seed entry was not stored as a delta")
	}
	baseBlob, ok := s.LoadSnapshotBlob("base-key")
	if !ok {
		f.Fatal("base blob missing")
	}
	valid, err := os.ReadFile(filepath.Join(dir, fileName("delta-key")))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	for _, n := range []int{0, 6, 14, 40, len(valid) / 2, len(valid) - 1} {
		f.Add(append([]byte(nil), valid[:n]...))
	}
	flip := append([]byte(nil), valid...)
	flip[len(flip)/3] ^= 0x01
	f.Add(flip)
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := parseEntry(data, "delta-key")
		if err != nil || p.kind != entryDelta {
			return
		}
		out, err := wire.DecodeDelta(baseBlob, p.snapBlob)
		if err != nil {
			return
		}
		snap, err := cpu.DecodeSnapshot(out)
		if err == nil && snap == nil {
			t.Fatal("nil snapshot decoded without error")
		}
	})
}

// TestStoreDeltaChainDepthBound: chained SaveDelta must write delta entries
// up to the depth bound, then break the chain with a full anchor and chain
// on from it — and every entry must load back bit-exact regardless of kind.
func TestStoreDeltaChainDepthBound(t *testing.T) {
	s, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	n := maxChainDepth + 3
	snaps := make([]*cpu.Snapshot, n)
	keys := make([]string, n)
	for i := range snaps {
		snaps[i] = storeSnapshot(t, 100+int64(i))
		keys[i] = fmt.Sprintf("chain-%d", i)
	}
	s.Save(keys[0], snaps[0], nil)
	for i := 1; i < n; i++ {
		s.SaveDelta(keys[i], snaps[i], nil, keys[i-1])
	}
	for i := 0; i < n; i++ {
		e := s.index[keys[i]]
		if e == nil {
			t.Fatalf("entry %d missing", i)
		}
		wantDelta := i != 0 && i != maxChainDepth+1
		if gotDelta := e.kind == entryDelta; gotDelta != wantDelta {
			t.Fatalf("entry %d kind=%d depth=%d, wantDelta=%v", i, e.kind, e.depth, wantDelta)
		}
		if wantDelta && e.baseKey != keys[i-1] {
			t.Fatalf("entry %d chained on %q, want %q", i, e.baseKey, keys[i-1])
		}
	}
	// Full anchors must be a small minority of the chain's on-disk bytes:
	// the deltas are sparse-XOR frames over near-identical snapshots.
	var fullBytes, deltaBytes int64
	for _, e := range s.Entries() {
		if e.Delta {
			deltaBytes += e.Size
		} else {
			fullBytes += e.Size
		}
	}
	if deltaBytes*5 > fullBytes {
		t.Fatalf("delta entries cost %d bytes against %d full-anchor bytes — not sparse", deltaBytes, fullBytes)
	}
	for i := 0; i < n; i++ {
		got, _, ok := s.Load(keys[i])
		if !ok || got.Hash() != snaps[i].Hash() {
			t.Fatalf("entry %d load: ok=%v", i, ok)
		}
	}
}

// TestStoreDeltaCorruptBaseIsAMiss: a bit flip in a chain's base must make
// every dependent load a miss — the broken link and its dependents are
// dropped, never mis-restored.
func TestStoreDeltaCorruptBaseIsAMiss(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	s.Save("base", storeSnapshot(t, 31), nil)
	s.SaveDelta("child", storeSnapshot(t, 32), nil, "base")
	if e := s.index["child"]; e == nil || e.kind != entryDelta {
		t.Fatal("child was not stored as a delta")
	}
	path := filepath.Join(dir, fileName("base"))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-8] ^= 0x20
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := s.Load("child"); ok {
		t.Fatal("dependent of a corrupt base restored")
	}
	if _, _, _, _, _, n := s.Stats(); n != 0 {
		t.Fatalf("%d entries survive a broken chain, want 0", n)
	}
}

// TestStoreAnchorPromotionOnBaseEviction: evicting a chain's base must
// first rewrite its direct dependents as full anchors — durably, so a
// reopen still resolves them — while deeper links stay deltas on the
// promoted entry.
func TestStoreAnchorPromotionOnBaseEviction(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	base := storeSnapshot(t, 41)
	child := storeSnapshot(t, 42)
	grand := storeSnapshot(t, 43)
	s.Save("base", base, nil)
	s.SaveDelta("child", child, storeRec(t), "base")
	s.SaveDelta("grand", grand, nil, "child")
	if e := s.index["child"]; e == nil || e.kind != entryDelta {
		t.Fatal("child was not stored as a delta")
	}

	// Age the base to the LRU position and shrink the budget so gc must
	// evict exactly it.
	s.mu.Lock()
	old := time.Now().Add(-time.Hour)
	be := s.index["base"]
	if err := os.Chtimes(be.path, old, old); err != nil {
		s.mu.Unlock()
		t.Fatal(err)
	}
	be.mtime = old
	s.maxBytes = s.bytes - 1
	s.gcLocked()
	s.mu.Unlock()

	if _, ok := s.index["base"]; ok {
		t.Fatal("base survived the eviction")
	}
	if e := s.index["child"]; e == nil || e.kind != entryFull || e.baseKey != "" || e.depth != 0 {
		t.Fatalf("child not promoted to a full anchor: %+v", e)
	}
	if e := s.index["grand"]; e == nil || e.kind != entryDelta || e.baseKey != "child" {
		t.Fatalf("grandchild lost its chain: %+v", e)
	}
	gotChild, rec, ok := s.Load("child")
	if !ok || gotChild.Hash() != child.Hash() || rec == nil {
		t.Fatalf("promoted child load: ok=%v rec=%v", ok, rec)
	}
	if got, _, ok := s.Load("grand"); !ok || got.Hash() != grand.Hash() {
		t.Fatalf("grandchild load after promotion: ok=%v", ok)
	}

	s2, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got, _, ok := s2.Load("grand"); !ok || got.Hash() != grand.Hash() {
		t.Fatalf("grandchild load after reopen: ok=%v", ok)
	}
}

// TestStoreConcurrentSaveLoadEvict races Save, SaveDelta, and Load of one
// hot key against budget-forced evictions from fillers — the store must
// never panic, never corrupt counters, and every hit must return the right
// snapshot (run under -race in CI).
func TestStoreConcurrentSaveLoadEvict(t *testing.T) {
	sizer, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	hot := storeSnapshot(t, 51)
	alt := storeSnapshot(t, 52)
	fillers := []*cpu.Snapshot{storeSnapshot(t, 53), storeSnapshot(t, 54)}
	sizer.Save("sizer", hot, nil)
	_, _, _, _, size, _ := sizer.Stats()

	s, err := Open(t.TempDir(), size*3+size/2)
	if err != nil {
		t.Fatal(err)
	}
	const iters = 40
	var wg sync.WaitGroup
	wg.Add(3)
	go func() { // re-save the hot key (full and delta-chained on a filler)
		defer wg.Done()
		for i := 0; i < iters; i++ {
			s.Save("hot", hot, nil)
			s.SaveDelta("hot-alt", alt, nil, "hot")
		}
	}()
	go func() { // thrash the budget so gc keeps evicting
		defer wg.Done()
		for i := 0; i < iters; i++ {
			s.Save(fmt.Sprintf("filler-%d", i), fillers[i%len(fillers)], nil)
		}
	}()
	go func() { // load the hot keys; every hit must be bit-exact
		defer wg.Done()
		for i := 0; i < iters; i++ {
			if got, _, ok := s.Load("hot"); ok && got.Hash() != hot.Hash() {
				t.Errorf("hot load returned hash %016x, want %016x", got.Hash(), hot.Hash())
				return
			}
			if got, _, ok := s.Load("hot-alt"); ok && got.Hash() != alt.Hash() {
				t.Errorf("hot-alt load returned hash %016x, want %016x", got.Hash(), alt.Hash())
				return
			}
		}
	}()
	wg.Wait()
	if _, _, _, _, bytes, n := s.Stats(); bytes < 0 || n < 0 {
		t.Fatalf("counters corrupted: bytes=%d entries=%d", bytes, n)
	}
}

// TestSaveEncodeZeroAlloc pins the pooled encode path: appending the PFSN
// section and rendering the entry file into recycled buffers must not
// allocate once the buffers have grown to size.
func TestSaveEncodeZeroAlloc(t *testing.T) {
	snap := storeSnapshot(t, 61)
	var snapBuf, fileBuf []byte
	run := func() {
		blob, err := snap.AppendBinary(snapBuf[:0])
		if err != nil {
			t.Fatal(err)
		}
		snapBuf = blob
		fileBuf = encodeEntry(fileBuf[:0], "k", snap.Hash(), entryFull, "", 0, blob, nil, recNone)
	}
	run()
	if n := testing.AllocsPerRun(20, run); n != 0 {
		t.Fatalf("pooled encode path allocates %v per save", n)
	}
}
