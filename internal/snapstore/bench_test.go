package snapstore

import (
	"testing"
)

// BenchmarkStoreLoad measures one verified restore from disk — read,
// payload-hash check, envelope decode — the cold-process warm-start hot
// path. Gated in BENCH_baseline.json.
func BenchmarkStoreLoad(b *testing.B) {
	st, err := Open(b.TempDir(), DefaultMaxBytes)
	if err != nil {
		b.Fatal(err)
	}
	snap := storeSnapshot(b, 1)
	const key = "aes-phase1|Alder Lake|194|0000000000000001|1|0"
	st.Save(key, snap, storeRec(b))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, ok := st.Load(key); !ok {
			b.Fatal("resident key missed")
		}
	}
}

// BenchmarkStoreSave measures one atomic spill to disk (encode, temp write,
// rename). Keys alternate so the resident-key fast path is not what gets
// measured.
func BenchmarkStoreSave(b *testing.B) {
	st, err := Open(b.TempDir(), DefaultMaxBytes)
	if err != nil {
		b.Fatal(err)
	}
	s0 := storeSnapshot(b, 1)
	s1 := storeSnapshot(b, 2)
	keys := [2]string{
		"aes-phase1|Alder Lake|194|0000000000000001|1|0",
		"aes-phase1|Alder Lake|194|0000000000000002|2|0",
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Drop the previous copy so every iteration pays the full write.
		k := keys[i%2]
		st.mu.Lock()
		if e, ok := st.index[k]; ok {
			st.dropLocked(k, e)
		}
		st.mu.Unlock()
		if i%2 == 0 {
			st.Save(k, s0, nil)
		} else {
			st.Save(k, s1, nil)
		}
	}
}
