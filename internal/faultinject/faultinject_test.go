package faultinject

import (
	"testing"

	"pathfinder/internal/phr"
)

func TestZeroProfileDisabled(t *testing.T) {
	if (Profile{}).Enabled() {
		t.Fatal("zero profile reports enabled")
	}
	if !Default().Enabled() {
		t.Fatal("default profile reports disabled")
	}
	if !(Profile{JitterProb: 0.1}).Enabled() {
		t.Fatal("jitter-only profile reports disabled")
	}
}

// TestInjectorDeterminism pins the core contract: a fixed (Profile, seed)
// pair replays the exact same fault sequence, and Reset rewinds it.
func TestInjectorDeterminism(t *testing.T) {
	p := Default().WithPollution(0.5, 4)
	type event struct {
		reg   string
		drop  bool
		alias uint64
		evict uint64
		eok   bool
		lat   int
	}
	record := func(in *Injector) []event {
		var evs []event
		reg := phr.New(194)
		for i := 0; i < 200; i++ {
			in.RunBoundary(reg)
			in.BranchEvent(reg)
			pc, ok := in.TrainingTarget(0x00ab_3c40)
			r, eok := in.CacheEvict()
			evs = append(evs, event{
				reg:   reg.String(),
				drop:  !ok,
				alias: pc,
				evict: r,
				eok:   eok,
				lat:   in.JitterLatency(300),
			})
		}
		return evs
	}
	a := record(NewInjector(p, 31))
	b := record(NewInjector(p, 31))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d diverges between identical injectors: %+v vs %+v", i, a[i], b[i])
		}
	}
	in := NewInjector(p, 31)
	record(in)
	in.Reset(31)
	c := record(in)
	for i := range a {
		if a[i] != c[i] {
			t.Fatalf("event %d diverges after Reset: %+v vs %+v", i, a[i], c[i])
		}
	}
	d := record(NewInjector(p, 32))
	same := true
	for i := range a {
		if a[i] != d[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("distinct seeds replayed an identical fault sequence")
	}
}

// TestSaltIndependence: the same seed under different salts draws different
// sequences — the knob the noise sweep uses to decorrelate repeats.
func TestSaltIndependence(t *testing.T) {
	base := Profile{PHRPollutionProb: 1, PHRPollutionBurst: 4}
	salted := base
	salted.Salt = 99
	a, b := phr.New(194), phr.New(194)
	NewInjector(base, 7).BranchEvent(a)
	NewInjector(salted, 7).BranchEvent(b)
	if a.Equal(b) {
		t.Fatal("salted injector polluted the PHR identically to the unsalted one")
	}
}

func TestBranchEventPollutes(t *testing.T) {
	reg := phr.New(194)
	in := NewInjector(Profile{PHRPollutionProb: 1, PHRPollutionBurst: 6}, 1)
	in.BranchEvent(reg)
	if reg.IsZero() {
		t.Fatal("pollution burst left the PHR zero")
	}
	quiet := phr.New(194)
	NewInjector(Profile{MisalignProb: 1}, 1).BranchEvent(quiet)
	if !quiet.IsZero() {
		t.Fatal("pollution-free profile touched the PHR on a branch event")
	}
}

func TestMisalignIsPureShift(t *testing.T) {
	reg := phr.New(194)
	reg.SetDoublet(0, 3)
	in := NewInjector(Profile{MisalignProb: 1}, 1)
	in.RunBoundary(reg)
	if got := reg.Doublet(1); got != 3 {
		t.Fatalf("misalign slip: doublet 1 = %v, want the shifted 3", got)
	}
	if got := reg.Doublet(0); got != 0 {
		t.Fatalf("misalign slip shifted in a non-zero doublet: %v", got)
	}
}

func TestTrainingTargetDropAndAlias(t *testing.T) {
	in := NewInjector(Profile{PHTDropProb: 1}, 3)
	if _, ok := in.TrainingTarget(0x40); ok {
		t.Fatal("drop-all profile applied a training update")
	}
	in = NewInjector(Profile{PHTAliasProb: 1}, 3)
	pc, ok := in.TrainingTarget(0x40)
	if !ok || pc == 0x40 {
		t.Fatalf("alias-all profile: got (%#x, %v), want an aliased applied update", pc, ok)
	}
	in = NewInjector(Profile{JitterProb: 1}, 3) // armed, but no PHT noise
	if pc, ok := in.TrainingTarget(0x40); !ok || pc != 0x40 {
		t.Fatalf("noise-free PHT path perturbed the update: (%#x, %v)", pc, ok)
	}
}

func TestJitterBoundsAndFloor(t *testing.T) {
	in := NewInjector(Profile{JitterProb: 1, JitterMag: 5}, 9)
	for i := 0; i < 1000; i++ {
		lat := in.JitterLatency(300)
		if lat < 295 || lat > 305 {
			t.Fatalf("jitter out of ±5 band: %d", lat)
		}
	}
	for i := 0; i < 1000; i++ {
		if lat := in.JitterLatency(1); lat < 1 {
			t.Fatalf("jitter produced sub-cycle latency %d", lat)
		}
	}
}
