// Package faultinject is the seeded, deterministic fault-injection layer of
// the simulator. The paper's attacks only matter because they survive
// real-world noise — §9 evaluates the AES byte theft *under a noise model*,
// and §10's mitigations are themselves structured noise injected into the
// predictor state — so the robustness evaluations need noise sources that
// are composable, tunable, and above all reproducible.
//
// A Profile describes which injectors are armed and how hard; an Injector
// is the per-machine instantiation, seeded from the machine seed exactly
// like the RAND instruction and the transient-collapse noise model. Every
// event the injector emits is a pure function of (Profile, seed, call
// sequence), and the call sequence of a single machine is deterministic, so
// fault-injected experiment reports inherit the harness determinism
// contract: byte-identical at every Parallelism level.
//
// The injectors model, in the terms of the paper:
//
//   - PHR pollution (§5, §7): context-switch-like bursts of N
//     attacker-invisible taken branches land in the path history register
//     at asynchronous points during execution — a per-taken-branch hazard,
//     exactly what preemptive OS activity does to a real attacker's
//     carefully constructed history. Pollution can therefore land between
//     an attack's PHR setup chain and the victim branch it targets, which
//     is what makes it the sweep knob of the §9 robustness evaluation.
//   - Victim misalignment (§6): the victim occasionally enters with its
//     history slipped by one doublet (a zero-footprint shift), so the
//     attacker's recovered alignment is off by one.
//   - PHT decay/aliasing (§2.2, §10): predictor training updates are
//     occasionally lost (counter decay) or land on an aliased PC
//     (destructive interference from other processes' branches).
//   - Cache-eviction noise (§9): pseudo-random line evictions perturb the
//     Flush+Reload channel the way co-resident cache pressure does.
//   - Latency jitter (§9): memory access latency wobbles by a few cycles,
//     moving both timed measurements and transient-window lengths.
package faultinject

import "pathfinder/internal/phr"

// Profile selects and scales the injectors. The zero value disables
// everything; a Profile with only zero probabilities is equivalent to no
// profile at all (machines skip injector construction entirely, so the
// golden reports are untouched). Fields are JSON-tagged so a profile can
// ride inside a pathfinderd job submission.
type Profile struct {
	// Salt perturbs the injector seed, letting two otherwise-identical runs
	// draw independent fault sequences without moving the machine seed.
	Salt int64 `json:"salt,omitempty"`

	// PHRPollutionProb is the per-taken-branch probability of a
	// context-switch burst: PHRPollutionBurst attacker-invisible taken
	// branches are folded into the hart's path history register right after
	// an architectural taken branch. Context switches are asynchronous, so
	// the hazard is per branch retired, not per run; typical real-world
	// rates are a few events per million branches.
	PHRPollutionProb  float64 `json:"phr_pollution_prob,omitempty"`
	PHRPollutionBurst int     `json:"phr_pollution_burst,omitempty"` // branches per burst; 0 means 12

	// MisalignProb is the per-run probability of a one-doublet history slip
	// (a zero-footprint shift), modeling victim misalignment.
	MisalignProb float64 `json:"misalign_prob,omitempty"`

	// PHTDropProb is the per-update probability that a conditional branch's
	// predictor training update is lost (counter decay under pressure).
	PHTDropProb float64 `json:"pht_drop_prob,omitempty"`

	// PHTAliasProb is the per-update probability that the training update
	// lands on an aliased branch address instead (destructive interference).
	PHTAliasProb float64 `json:"pht_alias_prob,omitempty"`

	// CacheEvictProb is the per-access probability that one pseudo-random
	// cache line is evicted (co-resident cache pressure on the Flush+Reload
	// channel).
	CacheEvictProb float64 `json:"cache_evict_prob,omitempty"`

	// JitterProb and JitterMag add a uniform ±JitterMag cycle wobble to a
	// memory access latency with probability JitterProb per access.
	JitterProb float64 `json:"jitter_prob,omitempty"`
	JitterMag  int     `json:"jitter_mag,omitempty"` // cycles; 0 means 3
}

// Enabled reports whether any injector is armed. Machines only build an
// Injector for enabled profiles, so a zero or nil profile adds no work to
// the hot paths.
func (p Profile) Enabled() bool {
	return p.PHRPollutionProb > 0 || p.MisalignProb > 0 || p.PHTDropProb > 0 ||
		p.PHTAliasProb > 0 || p.CacheEvictProb > 0 || p.JitterProb > 0
}

// burst resolves the pollution burst length default.
func (p Profile) burst() int {
	if p.PHRPollutionBurst > 0 {
		return p.PHRPollutionBurst
	}
	return 12
}

// mag resolves the jitter magnitude default.
func (p Profile) mag() int {
	if p.JitterMag > 0 {
		return p.JitterMag
	}
	return 3
}

// WithPollution returns a copy of the profile with the PHR-pollution
// intensity replaced — the knob the noise-sweep evaluation turns.
func (p Profile) WithPollution(prob float64, burst int) Profile {
	p.PHRPollutionProb = prob
	p.PHRPollutionBurst = burst
	return p
}

// Default is the standard noise profile of the robustness evaluations: a
// gentle mix of every injector, calibrated so the §9 AES byte-theft success
// rate stays in the paper's 96–100% band (98.43% reported) while still
// exercising every noise path. BENCH_noise.json records the calibration.
func Default() Profile {
	return Profile{
		PHRPollutionProb:  0.00005,
		PHRPollutionBurst: 8,
		MisalignProb:      0.002,
		PHTDropProb:       0.002,
		PHTAliasProb:      0.001,
		CacheEvictProb:    0.002,
		JitterProb:        0.01,
		JitterMag:         3,
	}
}

// splitmix64 matches the simulator's PRNG so fault sequences compose with
// the existing seed discipline.
type splitmix64 struct{ s uint64 }

func (r *splitmix64) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ z>>30) * 0xbf58476d1ce4e5b9
	z = (z ^ z>>27) * 0x94d049bb133111eb
	return z ^ z>>31
}

func (r *splitmix64) float() float64 { return float64(r.next()>>11) / (1 << 53) }

// Injector emits the fault events of one machine. Not safe for concurrent
// use — a machine is single-threaded, and each sharded trial owns its own
// machine and therefore its own injector.
type Injector struct {
	p   Profile
	rng splitmix64
}

// NewInjector builds the injector for one machine. seed is the machine
// seed; the profile's Salt folds in on top, so distinct trials (distinct
// seeds) draw independent fault sequences while a fixed (Profile, seed)
// pair always replays the same one.
func NewInjector(p Profile, seed int64) *Injector {
	in := &Injector{p: p}
	in.Reset(seed)
	return in
}

// Reset rewinds the injector to its as-built state for the given seed;
// machine recycling uses it so a recycled machine is observationally
// identical to a fresh one.
func (in *Injector) Reset(seed int64) {
	in.rng = splitmix64{s: (uint64(seed)^uint64(in.p.Salt)*0x9e3779b97f4a7c15)*2654435761 + 0x5afe}
}

// Profile returns the profile the injector was built from.
func (in *Injector) Profile() Profile { return in.p }

// State returns the injector's PRNG state, the only mutable word it owns.
// The checkpoint layer (cpu.Machine.Snapshot) captures it so a restored
// machine replays the identical fault sequence.
func (in *Injector) State() uint64 { return in.rng.s }

// SetState rewinds the injector's PRNG to a previously captured State.
func (in *Injector) SetState(s uint64) { in.rng.s = s }

// RunBoundary applies the run-start events — misalignment slips — to the
// hart's path history register: the victim occasionally enters with its
// history shifted by one doublet.
func (in *Injector) RunBoundary(reg *phr.Reg) {
	if p := in.p.MisalignProb; p > 0 && in.rng.float() < p {
		// A zero footprint is a pure one-doublet history shift.
		reg.Update(0)
	}
}

// BranchEvent fires after one architecturally taken branch: with
// probability PHRPollutionProb a context-switch burst of attacker-invisible
// branches is folded into the path history register. The injected branches
// update the PHR only — never the trace, the stats, or the BTB — exactly
// like the OS branches of §7.1 minus the fixed entry/exit structure.
// Landing mid-run means a burst can separate an attack's PHR setup from the
// victim branch it targets, which boundary-only pollution never could.
func (in *Injector) BranchEvent(reg *phr.Reg) {
	if p := in.p.PHRPollutionProb; p > 0 && in.rng.float() < p {
		for i, n := 0, in.p.burst(); i < n; i++ {
			r := in.rng.next()
			// Random low address bits are all the footprint sees (Fig. 2):
			// branch bits [15:0], target bits [5:0].
			reg.UpdateBranch(r&0xffff, (r>>16)&0x3f)
		}
	}
}

// TrainingTarget filters one predictor training update for the branch at
// pc: it returns the address the update should land on and whether it
// should be applied at all. Most calls return (pc, true) without drawing
// from the RNG.
func (in *Injector) TrainingTarget(pc uint64) (uint64, bool) {
	if p := in.p.PHTDropProb; p > 0 && in.rng.float() < p {
		return pc, false
	}
	if p := in.p.PHTAliasProb; p > 0 && in.rng.float() < p {
		// Flip one of the index/tag-visible low PC bits so the update trains
		// an aliased entry instead of the architectural one.
		return pc ^ (1 << (in.rng.next() % 13)), true
	}
	return pc, true
}

// CacheEvict decides whether one pseudo-random cache line is evicted after
// a memory access, returning the selector value for cache.Cache.EvictNth.
func (in *Injector) CacheEvict() (uint64, bool) {
	if p := in.p.CacheEvictProb; p > 0 && in.rng.float() < p {
		return in.rng.next(), true
	}
	return 0, false
}

// JitterLatency perturbs one access latency by up to ±JitterMag cycles.
// The result never drops below one cycle.
func (in *Injector) JitterLatency(lat int) int {
	if p := in.p.JitterProb; p > 0 && in.rng.float() < p {
		mag := in.p.mag()
		lat += int(in.rng.next()%uint64(2*mag+1)) - mag
		if lat < 1 {
			lat = 1
		}
	}
	return lat
}
