package core

import (
	"fmt"
	"math/rand"

	"pathfinder/internal/jpeg"
	"pathfinder/internal/media"
	"testing"

	"pathfinder/internal/cpu"
	"pathfinder/internal/isa"
	"pathfinder/internal/pathfinder"
	"pathfinder/internal/phr"
)

// mimic the image victim shape in-package: loop with per-iteration secret
// branch; big enough to exceed the window; junction-heavy via a 7-way
// check chain converging on one label.
func chainVictim(trips int64, pattern []byte) Victim {
	return Victim{
		Entry: "victim",
		Emit: func(a *isa.Assembler) {
			a.VariableStride()
			a.Label("victim")
			a.MovI(isa.R1, 0)
			a.MovI(isa.R2, trips)
			a.MovI(isa.R5, patternAddr)
			a.Label("vloop")
			a.Add(isa.R3, isa.R5, isa.R1)
			a.LdB(isa.R4, isa.R3, 0)
			for k := 1; k <= 7; k++ {
				a.MovI(isa.R6, int64(k))
				a.Label(fmt.Sprintf("chk%d", k))
				a.Br(isa.EQ, isa.R4, isa.R6, "complex")
			}
			a.AddI(isa.R8, isa.R8, 1)
			a.Jmp("next")
			a.Label("complex")
			a.AddI(isa.R9, isa.R9, 1)
			a.Label("next")
			a.AddI(isa.R1, isa.R1, 1)
			a.Label("vback")
			a.Br(isa.LT, isa.R1, isa.R2, "vloop")
			a.Ret()
		},
		Setup: func(m *cpu.Machine) { m.Mem.WriteBytes(patternAddr, pattern) },
	}
}

func TestXDebugJunction(t *testing.T) {
	const trips = 120
	pattern := make([]byte, trips)
	for i := range pattern {
		pattern[i] = byte((i * 7) % 9) // values 0..8; 1..7 go complex at chk k
	}
	v := chainVictim(trips, pattern)
	m := cpu.New(cpu.Options{Seed: 5})
	capProg, _ := buildCaptureProgram(m, v)
	window, err := ReadPHR(m, v, ReadPHROptions{})
	if err != nil {
		t.Fatal(err)
	}
	cfg, _ := pathfinder.Build(capProg)
	entry := capProg.MustSymbol("cap_call")
	dag, err := cfg.SearchDAG(pathfinder.Spec{Observed: window, Entry: entry, Final: entry + 1, MaxReversals: 194})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("terminals=%d deepestNil=%v", len(dag.Terminals), dag.Deepest == nil)
	// trace climb
	oracle := map[instanceKey]bool{}
	cl, probes, err := climbSuffix(m, v, capProg, window, dag.Root, nil, ExtendedOptions{Rounds: 6, MaxUnknownRun: 3}, oracle)
	t.Logf("climb: suffix=%d probes=%d err=%v", len(cl.suffix), probes, err)
	_ = phr.FootprintDoublets
}

func TestXDebugFullExtended(t *testing.T) {
	const trips = 120
	rng := rand.New(rand.NewSource(31))
	pattern := make([]byte, trips)
	for i := range pattern {
		pattern[i] = byte(rng.Intn(9))
	}
	v := chainVictim(trips, pattern)
	m := cpu.New(cpu.Options{Seed: 5})
	res, err := ExtendedReadPHR(m, v, ExtendedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("ext=%d complete=%v", len(res.Ext), res.Path.Complete)
	// verify against truth
	m2 := cpu.New(cpu.Options{Seed: 5})
	var fps []pathfinder.Step
	m2.TraceTaken = func(pc, tgt uint64) { fps = append(fps, pathfinder.Step{Addr: pc, Target: tgt, Taken: true}) }
	v.Setup(m2)
	m2.Run(res.CaptureProgram, "cap_main")
	truth := fps[194:]
	var rec []pathfinder.Step
	for _, s := range res.Path.Steps {
		if s.Taken {
			rec = append(rec, s)
		}
	}
	if len(rec) != len(truth) {
		t.Fatalf("len mismatch %d vs %d", len(rec), len(truth))
	}
	for i := range rec {
		if rec[i].Addr != truth[i].Addr {
			t.Fatalf("divergence at %d", i)
		}
	}
	t.Log("exact recovery")
}

const xCoefBase = 0x0040_0000

func xIDCTVictim(nblocks int, coef []jpeg.Block) Victim {
	return Victim{
		Entry: "idct_entry",
		Emit: func(a *isa.Assembler) {
			a.VariableStride()
			a.Label("idct_entry")
			a.MovI(isa.R1, 0)
			a.MovI(isa.R2, int64(nblocks))
			a.MovI(isa.R12, 0)
			a.MovI(isa.R13, 8)
			a.MovI(isa.R14, xCoefBase)
			a.Label("idct_blkloop")
			a.ShlI(isa.R3, isa.R1, 9)
			a.Add(isa.R3, isa.R14, isa.R3)
			a.MovI(isa.R5, 0)
			a.Label("idct_colloop")
			a.ShlI(isa.R6, isa.R5, 3)
			a.Add(isa.R6, isa.R3, isa.R6)
			for k := 1; k <= 7; k++ {
				a.Ld(isa.R7, isa.R6, int64(64*k))
				a.Label(fmt.Sprintf("idct_colchk%d", k))
				a.Br(isa.NE, isa.R7, isa.R12, "idct_colcomplex")
			}
			a.AddI(isa.R8, isa.R8, 1)
			a.Jmp("idct_colnext")
			a.Label("idct_colcomplex")
			a.AddI(isa.R9, isa.R9, 1)
			a.AddI(isa.R9, isa.R9, 1)
			a.Label("idct_colnext")
			a.AddI(isa.R5, isa.R5, 1)
			a.Label("idct_colback")
			a.Br(isa.LT, isa.R5, isa.R13, "idct_colloop")
			a.MovI(isa.R5, 0)
			a.Label("idct_rowloop")
			a.ShlI(isa.R6, isa.R5, 6)
			a.Add(isa.R6, isa.R3, isa.R6)
			for k := 1; k <= 7; k++ {
				a.Ld(isa.R7, isa.R6, int64(8*k))
				a.Label(fmt.Sprintf("idct_rowchk%d", k))
				a.Br(isa.NE, isa.R7, isa.R12, "idct_rowcomplex")
			}
			a.AddI(isa.R8, isa.R8, 1)
			a.Jmp("idct_rownext")
			a.Label("idct_rowcomplex")
			a.AddI(isa.R9, isa.R9, 1)
			a.AddI(isa.R9, isa.R9, 1)
			a.Label("idct_rownext")
			a.AddI(isa.R5, isa.R5, 1)
			a.Label("idct_rowback")
			a.Br(isa.LT, isa.R5, isa.R13, "idct_rowloop")
			a.AddI(isa.R1, isa.R1, 1)
			a.Label("idct_blkback")
			a.Br(isa.LT, isa.R1, isa.R2, "idct_blkloop")
			a.Ret()
		},
		Setup: func(m *cpu.Machine) {
			for b := range coef {
				for i, vv := range coef[b] {
					m.Mem.Write64(xCoefBase+uint64((b*64+i)*8), uint64(int64(vv)))
				}
			}
		},
	}
}

func TestXDebugIDCT(t *testing.T) {
	img := media.QRLike(24, 24, 7)
	enc, _ := jpeg.Encode(img.Pix, img.W, img.H, 60)
	_, blocks, _ := jpeg.DecodeBlocks(enc)
	v := xIDCTVictim(len(blocks), blocks)
	m := cpu.New(cpu.Options{Seed: 9})
	capProg, _ := buildCaptureProgram(m, v)

	// ground truth
	m2 := cpu.New(cpu.Options{Seed: 9})
	var truth []pathfinder.Step
	m2.TraceTaken = func(pc, tgt uint64) { truth = append(truth, pathfinder.Step{Addr: pc, Target: tgt, Taken: true}) }
	v.Setup(m2)
	m2.Run(capProg, "cap_main")
	truth = truth[194:]

	window, err := ReadPHR(m, v, ReadPHROptions{})
	if err != nil {
		t.Fatal(err)
	}
	cfg, _ := pathfinder.Build(capProg)
	entry := capProg.MustSymbol("cap_call")
	oracle := map[instanceKey]bool{}
	var ext []phr.Doublet
	dag, err := cfg.SearchDAG(pathfinder.Spec{Observed: window, Ext: ext, Entry: entry, Final: entry + 1, MaxReversals: 194})
	if err != nil {
		t.Fatal(err)
	}
	cl, _, err := climbSuffix(m, v, capProg, window, dag.Root, ext, ExtendedOptions{Rounds: 6, MaxUnknownRun: 3, Batch: 64}, oracle)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("suffix=%d", len(cl.suffix))
	for i := 0; i < len(cl.suffix) && i < 40; i++ {
		want := truth[len(truth)-1-i]
		if cl.suffix[i].Addr != want.Addr || cl.suffix[i].Target != want.Target {
			t.Fatalf("suffix[%d] = %#x->%#x, truth %#x->%#x", i, cl.suffix[i].Addr, cl.suffix[i].Target, want.Addr, want.Target)
		}
	}
	t.Log("suffix prefix matches truth")
}
