package core

import (
	"fmt"

	"pathfinder/internal/cpu"
	"pathfinder/internal/isa"
	"pathfinder/internal/pathfinder"
	"pathfinder/internal/phr"
)

// ExtendedOptions tune Extended_Read_PHR.
type ExtendedOptions struct {
	Read ReadPHROptions
	// Rounds is the number of victim runs between priming a probed entry
	// and reading its counter back (default 2). The readout requires the
	// counter to have moved by exactly the run count: an untouched entry
	// reads 4 probe mispredictions, a victim-trained one 4-Rounds, and an
	// entry that was evicted by predictor churn reads 0 — so exact-count
	// matching filters eviction false positives.
	Rounds int
	// MaxDoublets caps the recovered extension length (default 20000).
	MaxDoublets int
	// MaxUnknownRun caps consecutive unconditional taken branches bridged
	// per collision test: 4^run candidate combinations are probed (default
	// 3). Longer runs are the paper's acknowledged limitation (§5).
	MaxUnknownRun int
	// Batch is how many extension doublets are resolved against one
	// backward search before re-searching (default 64; the search suffix
	// stays sound for a full PHR window beyond the verified extension).
	Batch int
}

func (o *ExtendedOptions) defaults() {
	if o.Rounds == 0 {
		o.Rounds = 2
	}
	if o.MaxDoublets == 0 {
		o.MaxDoublets = 20000
	}
	if o.MaxUnknownRun == 0 {
		o.MaxUnknownRun = 3
	}
	if o.Batch == 0 {
		o.Batch = 64
	}
}

// counterMoved interprets a Read_PHT probe after `rounds` victim runs of a
// primed strongly-not-taken entry: the victim's single taken instance per
// run moves the counter up by one, so 4-rounds..3 probe mispredictions mean
// "real taken instance"; 4 means untouched; 0 usually means the primed
// entry was evicted and the probe read a stale longer/shorter provider.
func counterMoved(mis, rounds int) bool {
	lo := 4 - rounds
	if lo < 1 {
		lo = 1
	}
	return mis >= lo && mis <= 3
}

// ExtendedResult is the output of Extended_Read_PHR.
type ExtendedResult struct {
	// Window is the directly readable PHR (Read_PHR output).
	Window *phr.Reg
	// Ext holds the recovered older doublets: Ext[0] is history position
	// Window.Size(), Ext[1] the next older, and so on.
	Ext []phr.Doublet
	// Path is the complete recovered execution path (capture-program
	// coordinates), when the search converged.
	Path pathfinder.Path
	// CaptureProgram, Entry and Final are the program and search anchors
	// the path refers to: Entry is the 64 KiB-aligned call site reached
	// with a cleared PHR, Final the return pad after the victim call.
	CaptureProgram *isa.Program
	Entry, Final   uint64
	// Probes counts collision tests performed (victim runs ≈ Rounds per
	// recovered step).
	Probes int
}

// ExtendedReadPHR is Attack Primitive 4 (§5): it recovers control-flow
// history beyond the PHR window. After Read_PHR captures the most recent
// 194 doublets, the driver walks backward: the path search reconstructs
// taken branches from footprint algebra, and each doublet shifted out of
// the register is brute-forced over its four values by colliding an
// attacker branch (same low 16 address bits, candidate pre-branch PHR)
// with the victim's PHT entry — a matching PHR shows an elevated
// misprediction rate on the attacker branch (Figure 5).
func ExtendedReadPHR(m *cpu.Machine, v Victim, opts ExtendedOptions) (*ExtendedResult, error) {
	opts.defaults()
	capProg, err := buildCaptureProgram(m, v)
	if err != nil {
		return nil, err
	}
	window, err := ReadPHR(m, v, opts.Read)
	if err != nil {
		return nil, fmt.Errorf("core: extended read: %w", err)
	}
	cfg, err := pathfinder.Build(capProg)
	if err != nil {
		return nil, err
	}
	for fromLabel, entryLabel := range v.Transfers {
		from, ok1 := capProg.SymbolAddr(fromLabel)
		entry, ok2 := capProg.SymbolAddr(entryLabel)
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("core: transfer labels %q -> %q missing from program", fromLabel, entryLabel)
		}
		cfg.AddTransfer(from, entry)
	}
	res := &ExtendedResult{
		Window:         window,
		CaptureProgram: capProg,
		Entry:          capProg.MustSymbol("cap_call"),
		Final:          capProg.MustSymbol("cap_call") + 1,
	}

	var ext []phr.Doublet
	oracle := make(map[instanceKey]bool)
	for len(ext) < opts.MaxDoublets {
		j := len(ext)
		dag, err := cfg.SearchDAG(pathfinder.Spec{
			Observed:     window,
			Ext:          ext,
			Entry:        res.Entry,
			Final:        res.Final,
			MaxReversals: j + window.Size(),
		})
		if err != nil {
			return nil, fmt.Errorf("core: extended read at doublet %d: %w", j, err)
		}
		if len(dag.Terminals) > 0 {
			// Every terminal is observation-consistent and fully verified;
			// genuine 16-bit footprint collisions can still leave junctions
			// in the DAG, which the PHT oracle resolves one test each.
			var cands []pathfinder.Path
			for _, term := range dag.Terminals {
				p, probes, err := resolveDAGPath(m, v, capProg, term, len(ext), opts, oracle)
				res.Probes += probes
				if err != nil {
					return nil, fmt.Errorf("core: extended read disambiguation: %w", err)
				}
				cands = append(cands, p)
			}
			chosen, probes, err := disambiguatePaths(m, v, capProg, window.Size(), cands, opts)
			res.Probes += probes
			if err != nil {
				return nil, fmt.Errorf("core: extended read terminal disambiguation: %w", err)
			}
			res.Ext = ext
			res.Path = chosen
			return res, nil
		}
		if dag.Deepest == nil {
			return nil, fmt.Errorf("core: extended read at doublet %d: no consistent history found", j)
		}
		climb, probes, err := climbSuffix(m, v, capProg, window, dag.Root, ext, opts, oracle)
		res.Probes += probes
		if err != nil {
			return nil, fmt.Errorf("core: extended read suffix at doublet %d: %w", j, err)
		}
		suffix := climb.suffix
		// The suffix stays sound for a full window beyond the verified
		// extension, so a batch of doublets is resolved against it before
		// the next search. When the suffix runs out of conditional branches
		// the frontier junction (if any) is brute-forced jointly with the
		// unresolved unconditional tail.
		progressed := false
		for batched := 0; batched < opts.Batch && len(ext) < opts.MaxDoublets; {
			j := len(ext)
			jc := j
			for jc < len(suffix) && suffix[jc].Kind != pathfinder.EdgeCondTaken {
				jc++
			}
			if jc >= len(suffix) {
				break
			}
			learned, probes, err := resolveDoublets(m, v, capProg, window, ext, suffix, j, opts)
			res.Probes += probes
			if err != nil {
				if batched > 0 {
					// The suffix beyond the freshly verified doublets may
					// have taken a wrong turn at a junction outside the
					// trusted depth; re-search with the grown extension.
					break
				}
				return nil, fmt.Errorf("core: extended read at doublet %d: %w", j, err)
			}
			ext = append(ext, learned...)
			batched += len(learned)
			progressed = true
		}
		if !progressed {
			return nil, fmt.Errorf("core: extended read stalled at doublet %d: history suffix exhausted", len(ext))
		}
	}
	return nil, fmt.Errorf("core: extended read exceeded MaxDoublets=%d", opts.MaxDoublets)
}

// climbSuffix reconstructs the taken-branch suffix (most recent first) by
// walking the search DAG backward in time from the final state, resolving
// each ambiguous arrival with the PHT oracle. It stops at the first
// ambiguity it cannot test — an arrival candidate whose register is not yet
// fully covered by the verified extension, or an unconditional-branch tie —
// returning the sound prefix recovered so far.
// climbResult carries the outcome of one suffix climb.
type climbResult struct {
	suffix []pathfinder.Step
}

// arrivalPlan describes how one candidate arrival at an ambiguous node can
// be tested: the taken steps along its route back to the first conditional
// branch (the probe point), and how many of those reversals shift out
// doublets beyond the verified extension (brute-forced as combos).
type arrivalPlan struct {
	edge     *pathfinder.PredEdge
	steps    []pathfinder.Step // taken steps from the node backward; last is conditional when complete
	unknowns int
	complete bool // a conditional probe point was reached
}

// buildPlan walks backward from a candidate arrival through unique alive
// predecessors until it finds a conditional-taken step to probe.
func buildPlan(e *pathfinder.PredEdge, n *pathfinder.Node, extLen, maxUnknown int) arrivalPlan {
	plan := arrivalPlan{edge: e}
	depth := n.R
	cur := e
	curNode := n
	for hops := 0; hops < 4096; hops++ {
		if cur.HasStep && cur.Step.Taken {
			if depth >= extLen {
				plan.unknowns++
			}
			plan.steps = append(plan.steps, cur.Step)
			depth++
			if plan.unknowns > maxUnknown+1 {
				return plan // too deep to brute force
			}
			if cur.Step.Conditional {
				plan.complete = true
				return plan
			}
		}
		curNode = cur.From
		var alive []*pathfinder.PredEdge
		for i := range curNode.Preds {
			if curNode.Preds[i].From.Alive {
				alive = append(alive, &curNode.Preds[i])
			}
		}
		if len(alive) != 1 {
			return plan // nested ambiguity: cannot extend this probe plan
		}
		cur = alive[0]
	}
	return plan
}

// testPlan probes a complete arrival plan: the probe register is rebuilt
// from the observed window through the climbed suffix and the plan's route,
// brute-forcing every shifted-out doublet beyond the verified extension
// (both the suffix tail past the frontier and the plan's own reversals).
// Each candidate register's entry at the conditional probe point is primed
// to strong not-taken, the victim runs, and the counter is read back. It
// reports whether any combination corresponds to a real taken instance.
func testPlan(m *cpu.Machine, v Victim, capProg *isa.Program, window *phr.Reg, suffix []pathfinder.Step, plan arrivalPlan, ext []phr.Doublet, opts ExtendedOptions, cache map[instanceKey]bool) (bool, int, error) {
	all := append(append([]pathfinder.Step(nil), suffix...), plan.steps...)
	unknowns := 0
	for d := range all {
		if d >= len(ext) {
			unknowns++
		}
	}
	nCombos := 1 << (2 * unknowns)
	regs := make([]*phr.Reg, 0, nCombos)
	for combo := 0; combo < nCombos; combo++ {
		reg := window.Clone()
		uk := 0
		for d, st := range all {
			var top phr.Doublet
			if d < len(ext) {
				top = ext[d]
			} else {
				top = phr.Doublet(combo>>(2*uk)) & 3
				uk++
			}
			reg.ReverseUpdate(phr.Footprint(st.Addr, st.Target), top)
		}
		regs = append(regs, reg)
	}
	pc := all[len(all)-1].Addr
	probes := 0
	if nCombos == 1 {
		if taken, ok := cache[instanceKey{pc: pc, reg: regs[0].Words()}]; ok {
			return taken, 0, nil
		}
	}
	if v.Setup != nil {
		v.Setup(m)
	}
	for _, reg := range regs {
		if err := WritePHT(m, pc, reg, false); err != nil {
			return false, probes, err
		}
		probes++
	}
	for round := 0; round < opts.Rounds; round++ {
		if err := m.Run(capProg, "cap_main"); err != nil {
			return false, probes, err
		}
	}
	any := false
	for _, reg := range regs {
		mis, err := ReadPHT(m, pc, reg, 4)
		probes++
		if err != nil {
			return false, probes, err
		}
		taken := counterMoved(mis, opts.Rounds)
		cache[instanceKey{pc: pc, reg: reg.Words()}] = taken
		if taken {
			any = true
		}
	}
	return any, probes, nil
}

// climbSuffix reconstructs the taken-branch suffix (most recent first) by
// walking the search DAG backward in time from the final state. Ambiguous
// arrivals are resolved by probing each candidate route's nearest
// conditional-taken instance through the PHT oracle (Figure 5 + §4.4); a
// route whose instance is real belongs to the true history. The climb
// stops at ambiguities it cannot test — nodes beyond the verified
// extension's reach — returning the sound prefix, which the driver extends
// before the next climb.
func climbSuffix(m *cpu.Machine, v Victim, capProg *isa.Program, window *phr.Reg, root *pathfinder.Node, ext []phr.Doublet, opts ExtendedOptions, cache map[instanceKey]bool) (climbResult, int, error) {
	var res climbResult
	probes := 0
	n := root
	for {
		var alive []*pathfinder.PredEdge
		for i := range n.Preds {
			if n.Preds[i].From.Alive {
				alive = append(alive, &n.Preds[i])
			}
		}
		if len(alive) == 0 {
			return res, probes, nil
		}
		chosen := alive[0]
		if len(alive) > 1 {
			tailUnknowns := 0
			if n.R > len(ext) {
				tailUnknowns = n.R - len(ext)
			}
			var winners, defaults []*pathfinder.PredEdge
			overBudget := false
			for _, e := range alive {
				plan := buildPlan(e, n, len(ext), opts.MaxUnknownRun)
				if !plan.complete {
					defaults = append(defaults, e)
					continue
				}
				if tailUnknowns+plan.unknowns > opts.MaxUnknownRun+1 {
					overBudget = true
					break
				}
				hit, p, err := testPlan(m, v, capProg, window, res.suffix, plan, ext, opts, cache)
				probes += p
				if err != nil {
					return res, probes, err
				}
				if hit {
					winners = append(winners, e)
				}
			}
			if overBudget {
				// Too many unverified doublets to brute force here: return
				// the sound prefix; the driver verifies more of the
				// extension and re-climbs.
				return res, probes, nil
			}
			switch {
			case len(winners) == 1:
				chosen = winners[0]
			case len(winners) > 1:
				// A PHT hash collision can make a wrong route test positive
				// alongside the true one; verify each winner's deeper chain.
				var survivors []*pathfinder.PredEdge
				for _, e := range winners {
					ok, p, err := chainVerify(m, v, capProg, e.From, len(ext), opts, cache)
					probes += p
					if err != nil {
						return res, probes, err
					}
					if ok {
						survivors = append(survivors, e)
					}
				}
				if len(survivors) != 1 {
					return res, probes, fmt.Errorf("ambiguous arrivals at %#x: %d routes verify (invariant control flow beyond the PHR window?)", n.Addr, len(survivors))
				}
				chosen = survivors[0]
			case len(defaults) == 1:
				chosen = defaults[0]
			default:
				return res, probes, fmt.Errorf("no arrival route at %#x tests positive (%d untestable)", n.Addr, len(defaults))
			}
		}
		if chosen.HasStep && chosen.Step.Taken {
			res.suffix = append(res.suffix, chosen.Step)
		}
		n = chosen.From
	}
}

// chainVerify walks backward from a node through unique alive arrivals and
// oracle-tests up to three conditional-taken instances along the way; a
// hypothesis reached through a hash-collision false positive has junk
// registers upstream and fails quickly.
func chainVerify(m *cpu.Machine, v Victim, capProg *isa.Program, n *pathfinder.Node, trustDepth int, opts ExtendedOptions, cache map[instanceKey]bool) (bool, int, error) {
	probes := 0
	tested := 0
	for tested < 3 {
		var alive []*pathfinder.PredEdge
		for i := range n.Preds {
			if n.Preds[i].From.Alive {
				alive = append(alive, &n.Preds[i])
			}
		}
		if len(alive) != 1 {
			return true, probes, nil // ambiguity or end: stop verifying here
		}
		e := alive[0]
		if e.HasStep && e.Step.Taken && e.Step.Conditional {
			if e.From.R > trustDepth {
				return true, probes, nil
			}
			taken, p, err := oracleTaken(m, v, capProg, e.Step.Addr, e.From.Reg, opts, cache)
			probes += p
			if err != nil {
				return false, probes, err
			}
			if !taken {
				return false, probes, nil
			}
			tested++
		}
		n = e.From
	}
	return true, probes, nil
}

// oracleTaken asks the PHT whether the victim's conditional branch at pc
// executes taken with path history reg: prime the entry to strong
// not-taken, run the victim, read the counter back (§4.4 / Figure 5).
func oracleTaken(m *cpu.Machine, v Victim, capProg *isa.Program, pc uint64, reg *phr.Reg, opts ExtendedOptions, cache map[instanceKey]bool) (bool, int, error) {
	key := instanceKey{pc: pc, reg: reg.Words()}
	if taken, ok := cache[key]; ok {
		return taken, 0, nil
	}
	if err := WritePHT(m, pc, reg, false); err != nil {
		return false, 0, err
	}
	if v.Setup != nil {
		v.Setup(m)
	}
	for r := 0; r < opts.Rounds; r++ {
		if err := m.Run(capProg, "cap_main"); err != nil {
			return false, 0, err
		}
	}
	mis, err := ReadPHT(m, pc, reg, 4)
	if err != nil {
		return false, 1, err
	}
	taken := counterMoved(mis, opts.Rounds)
	cache[key] = taken
	return taken, 1, nil
}

// resolveDAGPath walks forward from a search-DAG node to the final state,
// resolving each ambiguous junction (a conditional branch whose taken and
// not-taken continuations are both observation-consistent) with one oracle
// query. On a complete path every node register is fully verified and the
// oracle is always meaningful; on a truncated suffix only junctions within
// trustDepth reversals of the final state have fully known registers —
// deeper ones are taken arbitrarily and re-derived after the extension
// grows.
func resolveDAGPath(m *cpu.Machine, v Victim, capProg *isa.Program, start *pathfinder.Node, trustDepth int, opts ExtendedOptions, cache map[instanceKey]bool) (pathfinder.Path, int, error) {
	var steps []pathfinder.Step
	probes := 0
	n := start
	for len(n.Succs) > 0 {
		e := n.Succs[0]
		if len(n.Succs) > 1 && (start.Complete || n.R <= trustDepth) {
			taken, p, err := oracleTaken(m, v, capProg, n.Addr, n.Reg, opts, cache)
			probes += p
			if err != nil {
				return pathfinder.Path{}, probes, err
			}
			found := false
			for _, cand := range n.Succs {
				if cand.HasStep && cand.Step.Conditional && cand.Step.Taken == taken {
					e, found = cand, true
					break
				}
			}
			if !found {
				return pathfinder.Path{}, probes, fmt.Errorf("unresolvable junction at %#x (oracle says taken=%v)", n.Addr, taken)
			}
		}
		if e.HasStep {
			steps = append(steps, e.Step)
		}
		n = e.To
	}
	return pathfinder.Path{Steps: steps, Complete: start.Complete}, probes, nil
}

// instanceKey identifies one dynamic execution instance of a conditional
// branch: its address plus the exact path history its prediction used.
type instanceKey struct {
	pc  uint64
	reg [7]uint64
}

// takenInstances forward-replays a complete path from the cleared entry
// state and collects the (pc, pre-branch PHR) of every conditional branch
// instance it claims TAKEN.
func takenInstances(p pathfinder.Path, size int) (map[instanceKey]*phr.Reg, []instanceKey) {
	reg := phr.New(size)
	set := make(map[instanceKey]*phr.Reg)
	var order []instanceKey
	for _, s := range p.Steps {
		if s.Conditional && s.Taken {
			k := instanceKey{pc: s.Addr, reg: reg.Words()}
			if _, dup := set[k]; !dup {
				set[k] = reg.Clone()
				order = append(order, k)
			}
		}
		if s.Taken {
			reg.UpdateBranch(s.Addr, s.Target)
		}
	}
	return set, order
}

// disambiguatePaths reduces multiple observation-consistent complete paths
// to one by querying the PHT oracle: for an instance claimed taken by some
// paths and not by others, prime its entry to strong not-taken, run the
// victim, and read the counter back — it moves iff the branch really
// executed taken with that history (§4.4 applied as in Figure 5).
func disambiguatePaths(m *cpu.Machine, v Victim, capProg *isa.Program, size int, cands []pathfinder.Path, opts ExtendedOptions) (pathfinder.Path, int, error) {
	probes := 0
	if len(cands) == 1 {
		return cands[0], 0, nil
	}
	type pathInfo struct {
		path  pathfinder.Path
		set   map[instanceKey]*phr.Reg
		order []instanceKey
	}
	infos := make([]pathInfo, len(cands))
	for i, p := range cands {
		set, order := takenInstances(p, size)
		infos[i] = pathInfo{path: p, set: set, order: order}
	}
	if v.Setup != nil {
		v.Setup(m)
	}
	for round := 0; round < 16 && len(infos) > 1; round++ {
		// Find an instance on which the candidates disagree.
		var key instanceKey
		var reg *phr.Reg
		found := false
		for _, inf := range infos {
			for _, k := range inf.order {
				claimed := 0
				for _, other := range infos {
					if _, ok := other.set[k]; ok {
						claimed++
					}
				}
				if claimed < len(infos) {
					key, reg, found = k, inf.set[k], true
					break
				}
			}
			if found {
				break
			}
		}
		if !found {
			// Identical taken-instance sets: the remaining paths are
			// observationally indistinguishable; return the first.
			return infos[0].path, probes, nil
		}
		if err := WritePHT(m, key.pc, reg, false); err != nil {
			return pathfinder.Path{}, probes, err
		}
		for r := 0; r < opts.Rounds; r++ {
			if err := m.Run(capProg, "cap_main"); err != nil {
				return pathfinder.Path{}, probes, err
			}
		}
		mis, err := ReadPHT(m, key.pc, reg, 4)
		probes++
		if err != nil {
			return pathfinder.Path{}, probes, err
		}
		reallyTaken := counterMoved(mis, opts.Rounds)
		var keep []pathInfo
		for _, inf := range infos {
			if _, claims := inf.set[key]; claims == reallyTaken {
				keep = append(keep, inf)
			}
		}
		if len(keep) == 0 {
			return pathfinder.Path{}, probes, fmt.Errorf("oracle eliminated every candidate path at %#x", key.pc)
		}
		infos = keep
	}
	return infos[0].path, probes, nil
}

// extCandidate is one hypothesis for the doublet values ext[j..j+len-1].
type extCandidate struct {
	doublets []phr.Doublet
	reg      *phr.Reg // pre-branch PHR at the probe depth under this hypothesis
}

// resolveDoublets recovers one or more extension doublets starting at index
// j with a prime+test+probe sequence (Figure 5 composed with the Read_PHT
// discipline of §4.4): every candidate pre-branch PHR at the probe branch
// is primed to a strongly-not-taken PHT entry (Write_PHT), the victim runs
// a few times — only a candidate matching a real execution instance has its
// entry trained taken — and a Read_PHT probe of each entry reveals which
// counters moved.
//
// A surviving false candidate (a PHT index/tag hash collision with another
// victim instance) is eliminated by re-testing the survivors at the next
// conditional branch deeper in history, where an independent hash would
// have to collide again. Persistent ties indicate control flow that is
// genuinely invariant beyond the PHR window — the paper's §6 limitation —
// and are reported as errors.
func resolveDoublets(m *cpu.Machine, v Victim, capProg *isa.Program, window *phr.Reg, ext []phr.Doublet, suffix []pathfinder.Step, j int, opts ExtendedOptions) ([]phr.Doublet, int, error) {
	// Register state after reversing steps 0..j-1 with known refills.
	base := window.Clone()
	for i := 0; i < j; i++ {
		base.ReverseUpdate(phr.Footprint(suffix[i].Addr, suffix[i].Target), ext[i])
	}
	if v.Setup != nil {
		v.Setup(m)
	}

	cands := []extCandidate{{doublets: nil, reg: base}}
	depth := j // next reversal to apply
	probes := 0
	for level := 0; level < 3; level++ {
		// Extend every candidate to the next conditional branch.
		jc := depth
		for jc < len(suffix) && suffix[jc].Kind != pathfinder.EdgeCondTaken {
			jc++
		}
		if jc >= len(suffix) {
			return nil, probes, fmt.Errorf("no conditional branch left to probe")
		}
		if jc-depth >= opts.MaxUnknownRun+1 {
			return nil, probes, fmt.Errorf("%d consecutive unconditional taken branches exceed the testable limit (§5)", jc-depth)
		}
		extra := jc - depth + 1
		var next []extCandidate
		for _, c := range cands {
			for combo := 0; combo < 1<<(2*extra); combo++ {
				reg := c.reg.Clone()
				ds := append(append([]phr.Doublet(nil), c.doublets...), make([]phr.Doublet, extra)...)
				for i := depth; i <= jc; i++ {
					top := phr.Doublet(combo>>(2*(i-depth))) & 3
					ds[i-j] = top
					reg.ReverseUpdate(phr.Footprint(suffix[i].Addr, suffix[i].Target), top)
				}
				next = append(next, extCandidate{doublets: ds, reg: reg})
			}
		}
		cands = next
		depth = jc + 1
		pc := suffix[jc].Addr

		var survivors []extCandidate
		for attempt := 0; attempt < 3; attempt++ {
			survivors = survivors[:0]
			// Prime every candidate entry to strong not-taken.
			for i := range cands {
				if err := WritePHT(m, pc, cands[i].reg, false); err != nil {
					return nil, probes, err
				}
				probes++
			}
			// Test: victim runs train only entries matching real instances.
			for round := 0; round < opts.Rounds; round++ {
				if err := m.Run(capProg, "cap_main"); err != nil {
					return nil, probes, err
				}
			}
			// Probe the counters back and keep the candidates that moved.
			for i := range cands {
				n, err := ReadPHT(m, pc, cands[i].reg, 4)
				probes++
				if err != nil {
					return nil, probes, err
				}
				if counterMoved(n, opts.Rounds) {
					survivors = append(survivors, cands[i])
				}
			}
			if len(survivors) > 0 {
				break
			}
			// No counter moved: the primed entries were likely evicted by
			// predictor churn during the victim runs; re-prime and retry.
		}
		switch len(survivors) {
		case 0:
			return nil, probes, fmt.Errorf("collision signal lost at %#x: no candidate counter moved", pc)
		case 1:
			return survivors[0].doublets, probes, nil
		}
		// Multiple survivors: a hash collision or genuinely invariant
		// control flow; deepen the test with the survivors only.
		cands = survivors
	}
	return nil, probes, fmt.Errorf("ambiguous collision: %d candidates survive deepening (invariant control flow beyond the PHR window?)", len(cands))
}
