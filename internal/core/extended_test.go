package core

import (
	"math/rand"
	"testing"

	"pathfinder/internal/cpu"
	"pathfinder/internal/isa"
	"pathfinder/internal/phr"
)

// loopVictim runs a counted loop with `trips` iterations.
func loopVictim(trips int64) Victim {
	return Victim{
		Entry: "victim",
		Emit: func(a *isa.Assembler) {
			a.Label("victim")
			a.MovI(isa.R1, 0)
			a.MovI(isa.R2, trips)
			a.Label("vloop")
			a.AddI(isa.R1, isa.R1, 1)
			a.Label("vback")
			a.Br(isa.LT, isa.R1, isa.R2, "vloop")
			a.Ret()
		},
	}
}

const patternAddr = 0x00e0_0000

// patternedVictim runs `trips` loop iterations whose body branches on a
// per-iteration secret bit, so the taken-branch history varies and the PHR
// never reaches a fixed point — the workload class (IDCT-like) the
// extended read targets.
func patternedVictim(trips int64, pattern []byte) Victim {
	return Victim{
		Entry: "victim",
		Emit: func(a *isa.Assembler) {
			a.Label("victim")
			a.MovI(isa.R1, 0)
			a.MovI(isa.R2, trips)
			a.MovI(isa.R5, patternAddr)
			a.MovI(isa.R6, 1)
			a.Label("vloop")
			a.Add(isa.R3, isa.R5, isa.R1)
			a.LdB(isa.R4, isa.R3, 0)
			a.Label("vbit")
			a.Br(isa.EQ, isa.R4, isa.R6, "vone")
			a.Nop()
			a.Jmp("vjoin")
			a.Label("vone")
			a.Nop()
			a.Label("vjoin")
			a.AddI(isa.R1, isa.R1, 1)
			a.Label("vback")
			a.Br(isa.LT, isa.R1, isa.R2, "vloop")
			a.Ret()
		},
		Setup: func(m *cpu.Machine) {
			m.Mem.WriteBytes(patternAddr, pattern)
		},
	}
}

func TestExtendedReadPHRLoop(t *testing.T) {
	if testing.Short() {
		t.Skip("extended read in long mode only")
	}
	const trips = 180 // ~360+ taken branches: well beyond the PHR window
	rng := rand.New(rand.NewSource(77))
	pattern := make([]byte, trips)
	ones := 0
	for i := range pattern {
		pattern[i] = byte(rng.Intn(2))
		ones += int(pattern[i])
	}
	v := patternedVictim(trips, pattern)
	m := cpu.New(cpu.Options{Seed: 3})

	// Ground truth: trace the capture run's taken branches.
	truthMachine := cpu.New(cpu.Options{Seed: 3})
	capProg, err := buildCaptureProgram(truthMachine, v)
	if err != nil {
		t.Fatal(err)
	}
	var fps []uint16
	truthMachine.TraceTaken = func(pc, target uint64) { fps = append(fps, phr.Footprint(pc, target)) }
	v.Setup(truthMachine)
	if err := truthMachine.Run(capProg, "cap_main"); err != nil {
		t.Fatal(err)
	}

	res, err := ExtendedReadPHR(m, v, ExtendedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Path.Complete {
		t.Fatal("recovered path incomplete")
	}
	// The complete path must contain exactly the same taken-branch count as
	// the ground truth *after* the clear chain (the path starts at the
	// cleared call site).
	wantTaken := 0
	// Taken branches after the Clear chain: call + victim loop + ret.
	// The clear chain is PHRSize jumps at the start of the trace.
	wantTaken = len(fps) - m.Arch().PHRSize
	gotTaken := 0
	for _, s := range res.Path.Steps {
		if s.Taken {
			gotTaken++
		}
	}
	if gotTaken != wantTaken {
		t.Fatalf("taken branches: got %d want %d", gotTaken, wantTaken)
	}
	// The loop back-edge trip count is recovered exactly even though it
	// exceeds the PHR window (§5 / §6 limitation lifted).
	vback := res.CaptureProgram.MustSymbol("vback")
	if got := res.Path.TakenCount(vback); got != trips-1 {
		t.Fatalf("back-edge count %d, want %d", got, trips-1)
	}
	if len(res.Ext) == 0 {
		t.Fatal("no extension doublets were recovered")
	}
	// And the extension matches the virtual ground-truth history.
	virt := make([]uint8, len(fps)+8)
	for _, f := range fps {
		copy(virt[1:], virt)
		virt[0] = 0
		for i := 0; i < 8; i++ {
			virt[i] ^= uint8(f>>(2*i)) & 3
		}
	}
	for i, d := range res.Ext {
		if virt[194+i] != d {
			t.Fatalf("ext doublet %d: got %d want %d", i, d, virt[194+i])
		}
	}
	// The per-iteration secret bits are recovered from the path.
	vbit := res.CaptureProgram.MustSymbol("vbit")
	var got []byte
	for _, s := range res.Path.Outcomes() {
		if s.Addr == vbit {
			if s.Taken {
				got = append(got, 1)
			} else {
				got = append(got, 0)
			}
		}
	}
	if len(got) != trips {
		t.Fatalf("recovered %d secret bits, want %d", len(got), trips)
	}
	for i := range pattern {
		if got[i] != pattern[i] {
			t.Fatalf("secret bit %d: got %d want %d", i, got[i], pattern[i])
		}
	}
}

func TestExtendedReadPHRInvariantLoopLimitation(t *testing.T) {
	// §6 limitation: a loop with invariant control flow beyond the PHR
	// window drives the register into a fixed point; Extended Read PHR must
	// detect the ambiguity rather than return a wrong count.
	if testing.Short() {
		t.Skip("long mode only")
	}
	v := loopVictim(260)
	m := cpu.New(cpu.Options{Seed: 3})
	_, err := ExtendedReadPHR(m, v, ExtendedOptions{})
	if err == nil {
		t.Fatal("invariant >window loop must be reported as ambiguous")
	}
}

func TestExtendedReadPHRWithinWindow(t *testing.T) {
	// A small victim that fits in the window: no extension needed; the
	// search completes directly after Read_PHR.
	if testing.Short() {
		t.Skip("long mode only")
	}
	v := loopVictim(20)
	m := cpu.New(cpu.Options{Seed: 4})
	res, err := ExtendedReadPHR(m, v, ExtendedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Path.Complete {
		t.Fatal("path incomplete")
	}
	if len(res.Ext) != 0 {
		t.Fatalf("unexpected extension of %d doublets", len(res.Ext))
	}
	vback := res.CaptureProgram.MustSymbol("vback")
	if got := res.Path.TakenCount(vback); got != 19 {
		t.Fatalf("back-edge count %d, want 19", got)
	}
}
