package core

import (
	"fmt"

	"pathfinder/internal/isa"
	"pathfinder/internal/phr"
)

// The PHR manipulation gadgets are chains of unconditional jumps. Each slot
// sits at a 64 KiB boundary (branch address low 16 bits ≈ 0), so a jump's
// footprint is controlled entirely by the low bits of its target:
//
//   - target low 6 bits zero        -> zero footprint: a pure one-doublet
//     shift (the Shift_PHR / Clear_PHR macros of §4),
//   - target low 2 bits t ∈ {0..3}  -> footprint doublet 0 = (T0<<1)|T1,
//     everything else zero: writes one chosen doublet (Write_PHR, §4.1).
//
// Because a chain slot is itself the previous jump's landing point, writing
// doublet values forces slot addresses with non-zero low bits, whose B0/B1
// address bits feed back into that slot's own footprint at doublet 3. The
// Write_PHR emitter solves for this feedback exactly (see emitWritePHR).
//
// Unconditional jumps never touch the PHTs, so these gadgets manipulate the
// PHR without disturbing predictor tables — the property §10.1 also relies
// on for the PHR-flush mitigation.

const slotAlign = 0x1_0000

// EmitShiftPHR emits the Shift_PHR[n] macro: n zero-footprint taken jumps
// that shift the PHR left by n doublets. The chain is entered by falling
// into its first slot and leaves by jumping to contLabel, which the caller
// must place at an address with zero low 6 bits (use Align(0x10000, 0));
// that final jump is the n-th shift. uniq namespaces the internal labels.
// n must be >= 1; use nothing at all for n == 0.
func EmitShiftPHR(a *isa.Assembler, uniq string, n int, contLabel string) {
	if n < 1 {
		panic("core: EmitShiftPHR needs n >= 1")
	}
	for i := 0; i < n; i++ {
		a.Align(slotAlign, 0)
		a.Label(fmt.Sprintf("%s_s%d", uniq, i))
		next := contLabel
		if i+1 < n {
			next = fmt.Sprintf("%s_s%d", uniq, i+1)
		}
		a.Jmp(next)
	}
}

// EmitClearPHR emits the Clear_PHR macro: Shift_PHR[phrSize], resetting the
// PHR to all zeros (§4).
func EmitClearPHR(a *isa.Assembler, uniq string, phrSize int, contLabel string) {
	EmitShiftPHR(a, uniq, phrSize, contLabel)
}

// swap2 exchanges the two low bits of a doublet-sized value. It maps a
// desired footprint doublet 0 value v = (T0<<1)|T1 to the target low bits
// t = (T1<<1)|T0, and is its own inverse.
func swap2(v uint8) uint8 { return (v&1)<<1 | (v>>1)&1 }

// WriteContOffset returns the low-bits offset at which the continuation of
// a Write_PHR chain for the given target PHR must be placed:
// Align(0x10000, WriteContOffset(target)) immediately before the
// continuation label. The offset encodes the final written doublet 0.
func WriteContOffset(target *phr.Reg) uint64 {
	return uint64(swap2(target.Doublet(0)))
}

// writePlan solves the Write_PHR footprint algebra. Branch i (1-based,
// i = 1..N) of the chain contributes:
//
//	doublet 0 value v[i] = (T0<<1)|T1 of its target   -> final position N-i
//	doublet 3 value w[i] = (B0<<1)|B1 of its address  -> final position N-i+3
//
// A slot's address low bits are the previous jump's target low bits, and
// both v and w are the same 2-bit swap of those bits, so w[i] == v[i-1]
// (with v[0] = 0: the first slot is placed at a clean boundary). The final
// doublet at position p is therefore v[N-p] ^ v[N-p+2] (the second term
// only when branch N-p+3 exists). Solving in decreasing i:
//
//	v[i] = D[N-i] ^ v[i+2]   (v[i+2] taken as 0 beyond N)
//
// The returned slice holds v[1..N] at indices 0..N-1.
func writePlan(target *phr.Reg) []uint8 {
	return computePlan(make([]uint8, target.Size()+3), target)
}

// computePlan is writePlan into a caller-supplied buffer of at least
// target.Size()+3 bytes, for the template patchers' allocation-free path.
func computePlan(v []uint8, target *phr.Reg) []uint8 {
	n := target.Size()
	v = v[:n+3] // v[i] at index i; indices n+1, n+2 must read zero
	v[n+1], v[n+2] = 0, 0
	for i := n; i >= 1; i-- {
		d := target.Doublet(n - i)
		if i+3 <= n {
			d ^= v[i+2]
		}
		v[i] = d
	}
	return v[1 : n+1]
}

// EmitWritePHR emits the Write_PHR macro (§4.1): a chain of target.Size()
// taken jumps that leaves the PHR exactly equal to target. The chain is
// entered by falling into its first slot. The final jump lands on
// contLabel, which the caller must place at
// Align(0x10000, WriteContOffset(target)); execution continues there with
// the PHR holding target. uniq namespaces the internal labels.
func EmitWritePHR(a *isa.Assembler, uniq string, target *phr.Reg, contLabel string) {
	plan := writePlan(target)
	n := len(plan)
	// Slot i (0-based) is placed at low bits swap2(plan[i-1]) — the target
	// bits of the previous jump; slot 0 at a clean boundary.
	for i := 0; i < n; i++ {
		off := uint64(0)
		if i > 0 {
			off = uint64(swap2(plan[i-1]))
		}
		a.Align(slotAlign, off)
		a.Label(fmt.Sprintf("%s_w%d", uniq, i))
		next := contLabel
		if i+1 < n {
			next = fmt.Sprintf("%s_w%d", uniq, i+1)
		}
		a.Jmp(next)
	}
}
