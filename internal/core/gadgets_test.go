package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pathfinder/internal/phr"
)

func TestSwap2Involution(t *testing.T) {
	for v := uint8(0); v < 4; v++ {
		if swap2(swap2(v)) != v {
			t.Fatalf("swap2 not an involution at %d", v)
		}
	}
	if swap2(0b01) != 0b10 || swap2(0b11) != 0b11 || swap2(0) != 0 {
		t.Fatal("swap2 mapping wrong")
	}
}

func TestWriteContOffsetEncodesDoublet0(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		target := phr.New(194)
		for i := 0; i < 194; i++ {
			target.SetDoublet(i, phr.Doublet(rng.Intn(4)))
		}
		off := WriteContOffset(target)
		// The continuation offset's swapped bits must be the final doublet 0.
		return phr.Doublet(swap2(uint8(off))) == target.Doublet(0)
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestWritePlanLength(t *testing.T) {
	target := phr.New(93)
	if got := len(writePlan(target)); got != 93 {
		t.Fatalf("plan length %d, want 93", got)
	}
}

func TestWritePlanZeroTargetIsZeroFootprints(t *testing.T) {
	// Writing an all-zero PHR must degenerate to a pure shift chain: every
	// planned doublet is zero, hence every slot is 64 KiB-aligned.
	target := phr.New(194)
	for _, v := range writePlan(target) {
		if v != 0 {
			t.Fatal("zero target must plan zero footprints")
		}
	}
}
