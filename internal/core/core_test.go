package core

import (
	"math/rand"
	"testing"

	"pathfinder/internal/bpu"
	"pathfinder/internal/cpu"
	"pathfinder/internal/isa"
	"pathfinder/internal/phr"
)

func randomPHR(rng *rand.Rand, size int) *phr.Reg {
	r := phr.New(size)
	for i := 0; i < size; i++ {
		r.SetDoublet(i, uint8(rng.Intn(4)))
	}
	return r
}

func TestWritePHRExact(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := cpu.New(cpu.Options{})
	for trial := 0; trial < 100; trial++ {
		want := randomPHR(rng, m.Arch().PHRSize)
		if err := WritePHR(m, want); err != nil {
			t.Fatal(err)
		}
		if !m.Hart(0).PHR.Equal(want) {
			t.Fatalf("trial %d:\n got %v\nwant %v", trial, m.Hart(0).PHR, want)
		}
	}
}

func TestWritePHRSkylake(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := cpu.New(cpu.Options{Arch: bpu.Skylake})
	for trial := 0; trial < 20; trial++ {
		want := randomPHR(rng, 93)
		if err := WritePHR(m, want); err != nil {
			t.Fatal(err)
		}
		if !m.Hart(0).PHR.Equal(want) {
			t.Fatalf("trial %d mismatch", trial)
		}
	}
}

func TestWritePHRSizeMismatch(t *testing.T) {
	m := cpu.New(cpu.Options{})
	if err := WritePHR(m, phr.New(93)); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

func TestShiftAndClearPHR(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := cpu.New(cpu.Options{})
	v := randomPHR(rng, m.Arch().PHRSize)
	if err := WritePHR(m, v); err != nil {
		t.Fatal(err)
	}
	if err := ShiftPHR(m, 5); err != nil {
		t.Fatal(err)
	}
	want := v.Clone()
	want.Shift(5)
	if !m.Hart(0).PHR.Equal(want) {
		t.Fatalf("shift mismatch:\n got %v\nwant %v", m.Hart(0).PHR, want)
	}
	if err := ClearPHR(m); err != nil {
		t.Fatal(err)
	}
	if !m.Hart(0).PHR.IsZero() {
		t.Fatal("ClearPHR left residue")
	}
}

func TestGadgetsDoNotTouchPHTs(t *testing.T) {
	m := cpu.New(cpu.Options{})
	if err := WritePHR(m, randomPHR(rand.New(rand.NewSource(4)), 194)); err != nil {
		t.Fatal(err)
	}
	for i, tt := range m.BPU.CBP.Tables {
		if tt.Occupancy() != 0 {
			t.Fatalf("Write_PHR polluted tagged table %d", i)
		}
	}
}

// phrWritingVictim returns a victim whose body is itself a Write_PHR chain:
// calling it leaves a predetermined PHR — the setup of the §4.2 evaluation.
func phrWritingVictim(value *phr.Reg) Victim {
	return Victim{
		Entry: "victim",
		Emit: func(a *isa.Assembler) {
			a.Label("victim")
			a.Nop()
			EmitWritePHR(a, "vw", value, "vdone")
			a.Align(0x1_0000, WriteContOffset(value))
			a.Label("vdone")
			a.Ret()
		},
	}
}

func TestCaptureVictimPHRDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	val := randomPHR(rng, 194)
	v := phrWritingVictim(val)
	a, err := CaptureVictimPHR(cpu.New(cpu.Options{}), v)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CaptureVictimPHR(cpu.New(cpu.Options{}), v)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatal("capture not deterministic")
	}
	// The capture includes the victim's RET footprint on top of the chain
	// value: one extra taken branch.
	want := val.Clone()
	wantShifted := want.Clone()
	wantShifted.Shift(1)
	if a.Equal(val) {
		t.Fatal("capture unexpectedly equals the raw chain value (RET missing?)")
	}
	// Undoing one update with the RET's footprint must recover the value
	// shifted... instead simply check the upper doublets moved up by one.
	for i := 20; i < 194; i++ {
		if a.Doublet(i) != val.Doublet(i-1) {
			t.Fatalf("doublet %d: got %d want %d (value shifted by RET)", i, a.Doublet(i), val.Doublet(i-1))
		}
	}
}

func TestReadPHRRecoversVictimPHR(t *testing.T) {
	// §4.2 evaluation (reduced): initialize the PHR to random states via a
	// PHR-writing victim and read it back with the Read_PHR primitive.
	trials := 3
	doublets := 16
	if testing.Short() {
		trials, doublets = 1, 8
	}
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < trials; trial++ {
		val := randomPHR(rng, 194)
		v := phrWritingVictim(val)
		m := cpu.New(cpu.Options{Seed: int64(trial)})
		truth, err := CaptureVictimPHR(m, v)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ReadPHR(m, v, ReadPHROptions{MaxDoublets: doublets})
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < doublets; k++ {
			if got.Doublet(k) != truth.Doublet(k) {
				t.Fatalf("trial %d doublet %d: got %d want %d", trial, k, got.Doublet(k), truth.Doublet(k))
			}
		}
	}
}

func TestReadPHRFullRegister(t *testing.T) {
	if testing.Short() {
		t.Skip("full 194-doublet read in long mode only")
	}
	rng := rand.New(rand.NewSource(7))
	val := randomPHR(rng, 194)
	v := phrWritingVictim(val)
	m := cpu.New(cpu.Options{Seed: 11})
	truth, err := CaptureVictimPHR(m, v)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadPHR(m, v, ReadPHROptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(truth) {
		t.Fatalf("full read mismatch:\n got %v\nwant %v", got, truth)
	}
}

// singleBranchVictim builds a program with one conditional branch at a
// chosen victim address; R1 selects its direction.
func singleBranchVictim(t *testing.T, pcLow uint64) (*isa.Program, uint64) {
	t.Helper()
	a := isa.NewAssembler()
	a.Org(VictimBase)
	a.Label("ventry")
	a.MovI(isa.R2, 1)
	a.Align(0x1_0000, pcLow)
	a.Label("vbr")
	a.Br(isa.EQ, isa.R1, isa.R2, "vafter")
	a.Label("vafter")
	a.Halt()
	p, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	return p, p.MustSymbol("vbr")
}

func TestWritePHTPoisonsAliasedVictimBranch(t *testing.T) {
	prog, vpc := singleBranchVictim(t, 0xac40)
	m := cpu.New(cpu.Options{Seed: 9})
	target := randomPHR(rand.New(rand.NewSource(10)), 194)

	// Poison (pc, PHR) to not-taken, then run the victim branch with that
	// exact PHR and a taken outcome: it must mispredict.
	if err := WritePHT(m, vpc, target, false); err != nil {
		t.Fatal(err)
	}
	if err := WritePHR(m, target); err != nil {
		t.Fatal(err)
	}
	m.ResetStats()
	m.Hart(0).SetReg(isa.R1, 1) // branch taken
	if err := m.Run(prog, "ventry"); err != nil {
		t.Fatal(err)
	}
	st := m.Branch(vpc)
	if st.Executed != 1 || st.Mispredicted != 1 {
		t.Fatalf("victim branch executed=%d mispredicted=%d, want 1/1", st.Executed, st.Mispredicted)
	}

	// Control: with an unrelated PHR the poisoning must not apply. The
	// branch may still mispredict through the base predictor, so poison
	// taken and check a taken run predicts correctly instead.
	if err := WritePHT(m, vpc, target, true); err != nil {
		t.Fatal(err)
	}
	if err := WritePHR(m, target); err != nil {
		t.Fatal(err)
	}
	m.ResetStats()
	m.Hart(0).SetReg(isa.R1, 1)
	if err := m.Run(prog, "ventry"); err != nil {
		t.Fatal(err)
	}
	if st := m.Branch(vpc); st.Mispredicted != 0 {
		t.Fatalf("taken-poisoned branch mispredicted %d times", st.Mispredicted)
	}
}

func TestReadPHTCounterReadout(t *testing.T) {
	// Prime the entry to strongly-not-taken, let the victim take the branch
	// k times at the same (PC, PHR), probe with 4 taken executions: the
	// probe must mispredict 4-k times (§4.4).
	for k := 0; k <= 3; k++ {
		prog, vpc := singleBranchVictim(t, 0x9c80)
		m := cpu.New(cpu.Options{Seed: 21})
		target := randomPHR(rand.New(rand.NewSource(int64(30+k))), 194)
		if err := WritePHT(m, vpc, target, false); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < k; i++ {
			if err := WritePHR(m, target); err != nil {
				t.Fatal(err)
			}
			m.Hart(0).SetReg(isa.R1, 1) // taken
			if err := m.Run(prog, "ventry"); err != nil {
				t.Fatal(err)
			}
		}
		mis, err := ReadPHT(m, vpc, target, 4)
		if err != nil {
			t.Fatal(err)
		}
		if mis != 4-k {
			t.Fatalf("k=%d: probe mispredicts = %d, want %d", k, mis, 4-k)
		}
	}
}

func TestWritePlanSolvesPollution(t *testing.T) {
	// Property: simulating the emitted chain's footprints doublet-exactly
	// must reproduce the requested PHR for random targets.
	rng := rand.New(rand.NewSource(40))
	for trial := 0; trial < 200; trial++ {
		target := randomPHR(rng, 194)
		plan := writePlan(target)
		sim := phr.New(194)
		prevT := uint64(0)
		for i, v := range plan {
			addr := uint64(0x5_0000)*uint64(i+1) + prevT
			tbits := uint64(swap2(v))
			tgt := uint64(0x5_0000)*uint64(i+2) + tbits
			sim.UpdateBranch(addr, tgt)
			prevT = tbits
		}
		if !sim.Equal(target) {
			t.Fatalf("trial %d: plan does not reproduce target", trial)
		}
	}
}
