package core

import (
	"fmt"

	"pathfinder/internal/isa"
	"pathfinder/internal/pathfinder"
	"pathfinder/internal/phr"
	"pathfinder/internal/wire"
)

// Wire codec for ExtendedResult, the phase-level recovery artifact the AES
// driver checkpoints next to its machine snapshot. Persisting it is what
// lets a cold process resume from the snapshot store without re-running
// Extended_Read_PHR: the snapshot restores the trained predictor state and
// the decoded result supplies the capture program and recovered path the
// poisoned queries replay. Every component is pure data (window register,
// doublet extension, path, program, anchors), so encode→decode is lossless
// and a decoded result drives byte-identical continuations.

// maxWireExt bounds the decoded extension length, mirroring the
// ExtendedOptions.MaxDoublets default ceiling with headroom.
const maxWireExt = 1 << 22

// EncodeWire appends the result to w.
func (r *ExtendedResult) EncodeWire(w *wire.Writer) {
	w.Bool(r.Window != nil)
	if r.Window != nil {
		r.Window.EncodeWire(w)
	}
	w.U32(uint32(len(r.Ext)))
	w.Raw(r.Ext)
	r.Path.EncodeWire(w)
	w.Bool(r.CaptureProgram != nil)
	if r.CaptureProgram != nil {
		r.CaptureProgram.EncodeWire(w)
	}
	w.U64(r.Entry)
	w.U64(r.Final)
	w.I64(int64(r.Probes))
}

// DecodeWireExtendedResult reads a result from rd.
func DecodeWireExtendedResult(rd *wire.Reader) *ExtendedResult {
	r := &ExtendedResult{}
	if rd.Bool() {
		r.Window = &phr.Reg{}
		r.Window.DecodeWire(rd)
	}
	n := rd.Len(maxWireExt)
	if rd.Err() != nil {
		return nil
	}
	r.Ext = make([]phr.Doublet, n)
	for i := 0; i < n; i++ {
		r.Ext[i] = rd.U8()
	}
	r.Path = pathfinder.DecodeWirePath(rd)
	if rd.Bool() {
		r.CaptureProgram = isa.DecodeWireProgram(rd)
	}
	r.Entry = rd.U64()
	r.Final = rd.U64()
	probes := rd.I64()
	if rd.Err() != nil {
		return nil
	}
	if probes < 0 {
		rd.Fail(fmt.Errorf("core: wire probe count %d negative", probes))
		return nil
	}
	r.Probes = int(probes)
	return r
}
