package core

import (
	"fmt"

	"pathfinder/internal/cpu"
	"pathfinder/internal/isa"
	"pathfinder/internal/phr"
)

// Registers reserved by attack harness programs. Victim code is free to use
// any register: the harness re-initialises its own state around each call.
const (
	rIter    = isa.Reg(20) // loop counter
	rIters   = isa.Reg(21) // loop bound
	rCoin    = isa.Reg(22) // random train bit
	rOne     = isa.Reg(23) // constant 1
	rOutcome = isa.Reg(24) // scheduled branch outcome
	rTable   = isa.Reg(25) // outcome table base
)

// WritePHR is Attack Primitive "Write_PHR": it sets the hart's PHR to the
// given value by running a generated chain of 194 (PHR-size) taken jumps.
func WritePHR(m *cpu.Machine, target *phr.Reg) error {
	if target.Size() != m.Arch().PHRSize {
		return fmt.Errorf("core: target size %d != PHR size %d", target.Size(), m.Arch().PHRSize)
	}
	a := isa.NewAssembler()
	a.Org(AttackerBase)
	a.Label("main")
	EmitWritePHR(a, "wr", target, "done")
	a.Align(slotAlign, WriteContOffset(target))
	a.Label("done")
	a.Halt()
	p, err := a.Assemble()
	if err != nil {
		return err
	}
	return m.Run(p, "main")
}

// ShiftPHR runs the Shift_PHR[n] macro on the machine.
func ShiftPHR(m *cpu.Machine, n int) error {
	if n <= 0 {
		return nil
	}
	a := isa.NewAssembler()
	a.Org(AttackerBase)
	a.Label("main")
	EmitShiftPHR(a, "sh", n, "done")
	a.Align(slotAlign, 0)
	a.Label("done")
	a.Halt()
	p, err := a.Assemble()
	if err != nil {
		return err
	}
	return m.Run(p, "main")
}

// ClearPHR runs the Clear_PHR macro (Shift_PHR[PHR size]).
func ClearPHR(m *cpu.Machine) error { return ShiftPHR(m, m.Arch().PHRSize) }

// CaptureVictimPHR returns the ground-truth PHR value a Read_PHR attack
// recovers: the PHR after Clear_PHR; call victim; return. It uses the same
// code layout as the attack programs (victim at VictimBase, 64 KiB-aligned
// call site), so footprints match exactly. This is a test oracle, not an
// attacker capability.
func CaptureVictimPHR(m *cpu.Machine, v Victim) (*phr.Reg, error) {
	p, err := buildCaptureProgram(m, v)
	if err != nil {
		return nil, err
	}
	if v.Setup != nil {
		v.Setup(m)
	}
	if err := m.Run(p, "cap_main"); err != nil {
		return nil, err
	}
	return m.Hart(0).PHR.Clone(), nil
}

func buildCaptureProgram(m *cpu.Machine, v Victim) (*isa.Program, error) {
	a := isa.NewAssembler()
	v.emitInto(a)
	a.Label("cap_main")
	EmitClearPHR(a, "cap_clr", m.Arch().PHRSize, "cap_call")
	a.Align(slotAlign, 0)
	a.Label("cap_call")
	a.Call(v.Entry)
	a.Halt()
	return a.Assemble()
}

// ReadPHROptions tune the Read_PHR primitive.
type ReadPHROptions struct {
	// Iters is the train/test loop length per candidate value (default 48).
	Iters int
	// MaxDoublets limits how many doublets are recovered (default: all).
	MaxDoublets int
	// Threshold is the test-branch misprediction rate above which a
	// candidate is declared the true doublet (default 0.25).
	Threshold float64
}

func (o *ReadPHROptions) defaults() {
	if o.Iters == 0 {
		o.Iters = 48
	}
	if o.Threshold == 0 {
		o.Threshold = 0.25
	}
}

// ReadPHR is Attack Primitive 1, "Read_PHR": it recovers the PHR value left
// by a victim call, one doublet at a time, by correlating a random train
// branch with a test branch (§4.2, Figure 4). For each doublet it rebuilds
// the two-path gadget: the taken path clears the PHR, calls the victim and
// shifts the doublet under test to the top; the not-taken path writes a
// candidate X (with the already-recovered doublets below it). When the two
// paths produce the same PHR the predictor cannot separate them and the
// test branch mispredicts ~50% of the time; otherwise ~0%.
//
// The recovered value is the PHR *as produced by the capture sequence*
// (clear; call victim; return): it includes the call and return footprints,
// which Pathfinder accounts for when mapping it back to control flow.
func ReadPHR(m *cpu.Machine, v Victim, opts ReadPHROptions) (*phr.Reg, error) {
	opts.defaults()
	n := m.Arch().PHRSize
	limit := n
	if opts.MaxDoublets > 0 && opts.MaxDoublets < n {
		limit = opts.MaxDoublets
	}
	if v.Setup != nil {
		v.Setup(m)
	}
	rt, err := newReadTemplate(m, v)
	if err != nil {
		return nil, err
	}
	recovered := phr.New(n)
	for k := 0; k < limit; k++ {
		best, bestRate := phr.Doublet(0), -1.0
		found := false
		for x := 0; x < 4; x++ {
			rate, err := rt.candidateRate(m, recovered, k, phr.Doublet(x), opts.Iters)
			if err != nil {
				return nil, fmt.Errorf("core: doublet %d candidate %d: %w", k, x, err)
			}
			if rate > bestRate {
				best, bestRate = phr.Doublet(x), rate
			}
			if rate >= opts.Threshold {
				// The 50% signature: X == P_k. The paper tests all four
				// values; stopping at the first hit is equivalent and
				// cheaper.
				found = true
				break
			}
		}
		if !found && bestRate < opts.Threshold {
			// Borderline separation (predictor interference can depress the
			// 50% signature): re-measure every candidate with twice the
			// iterations and accept a clear argmax.
			best, bestRate = 0, -1.0
			for x := 0; x < 4; x++ {
				rate, err := rt.candidateRate(m, recovered, k, phr.Doublet(x), 2*opts.Iters)
				if err != nil {
					return nil, fmt.Errorf("core: doublet %d candidate %d (retry): %w", k, x, err)
				}
				if rate > bestRate {
					best, bestRate = phr.Doublet(x), rate
				}
			}
			if bestRate < opts.Threshold*0.6 {
				return nil, fmt.Errorf("core: doublet %d: no candidate crossed threshold (best %.2f)", k, bestRate)
			}
		}
		recovered.SetDoublet(k, best)
	}
	return recovered, nil
}

// readDoubletCandidate runs one train/test experiment (Figure 4) and
// returns the test branch's misprediction rate.
func readDoubletCandidate(m *cpu.Machine, v Victim, known *phr.Reg, k int, x phr.Doublet, iters int) (float64, error) {
	n := m.Arch().PHRSize
	// Candidate PHR for the not-taken path: X at the top, the known
	// doublets P_{k-1}..P_0 right below it, zeros at the bottom — the same
	// image the taken path produces by shifting the victim PHR by n-1-k.
	cand := phr.New(n)
	cand.SetDoublet(n-1, x)
	for j := 0; j < k; j++ {
		cand.SetDoublet(n-1-k+j, known.Doublet(j))
	}
	shift := n - 1 - k

	a := isa.NewAssembler()
	v.emitInto(a)
	a.Label("main")
	a.MovI(rIter, 0)
	a.MovI(rIters, int64(iters))
	a.MovI(rOne, 1)
	a.Label("loop")
	a.Rand(rCoin)
	a.And(rCoin, rCoin, rOne)
	a.Label("train")
	a.Br(isa.EQ, rCoin, rOne, "pathA")
	// Path B (train not taken): write the candidate PHR; the write chain's
	// final jump lands on the test branch.
	EmitWritePHR(a, "wrB", cand, "test")
	// Path A (train taken): clear, call the victim, shift P_k to the top,
	// then fall through (or shift-jump) to the test branch.
	a.Align(slotAlign, 0)
	a.Label("pathA")
	EmitClearPHR(a, "clrA", n, "callsite")
	a.Align(slotAlign, 0)
	a.Label("callsite")
	a.Call(v.Entry)
	// The victim's RET lands here: keep the return site at callsite+1 so
	// the RET footprint matches the capture layout exactly.
	a.Nop()
	if shift > 0 {
		EmitShiftPHR(a, "shA", shift, "test")
	}
	// The test branch: same condition as the train branch. Its address low
	// bits encode the candidate's doublet 0 so the Write chain's final jump
	// stays consistent; for shift == 0 path A falls straight through.
	a.Align(slotAlign, WriteContOffset(cand))
	a.Label("test")
	a.Br(isa.EQ, rCoin, rOne, "merge")
	a.Label("merge")
	a.AddI(rIter, rIter, 1)
	a.Br(isa.LT, rIter, rIters, "loop")
	a.Halt()

	p, err := a.Assemble()
	if err != nil {
		return 0, err
	}
	testAddr := p.MustSymbol("test")
	m.ResetStats()
	if err := m.Run(p, "main"); err != nil {
		return 0, err
	}
	return m.Branch(testAddr).MispredictRate(), nil
}

// aliasedBranchProgram builds a program that repeatedly (1) writes a chosen
// PHR and (2) executes a conditional branch whose address aliases victimPC
// (equal low 16 bits) with a per-iteration outcome read from memory. It is
// the shared engine of Write_PHT and Read_PHT.
const outcomeTableAddr = 0x00f0_0000

// aliasedBranchProgram returns the per-machine alias template for
// victimPC's low 16 bits, patched for this (target, outcomes) call, with
// the outcome table written to memory. The returned program is owned by
// the machine's template cache and only valid until the next call.
func aliasedBranchProgram(m *cpu.Machine, victimPC uint64, target *phr.Reg, outcomes []bool) (*isa.Program, uint64, error) {
	low := victimPC & 0xffff
	c := cachesOf(m)
	t := c.alias[low]
	if t == nil || t.n != m.Arch().PHRSize {
		var err error
		t, err = newAliasTemplate(m.Arch().PHRSize, low)
		if err != nil {
			return nil, 0, err
		}
		c.alias[low] = t
	}
	aliasAddr, err := t.patch(target, len(outcomes))
	if err != nil {
		return nil, 0, err
	}
	for i, o := range outcomes {
		v := uint64(0)
		if o {
			v = 1
		}
		m.Mem.Write64(outcomeTableAddr+uint64(8*i), v)
	}
	return t.prog, aliasAddr, nil
}

// buildAliasedBranchProgram is the fresh-assembly shape behind the alias
// template: the write-chain/landing/aliased-branch loop of Write_PHT and
// Read_PHT.
func buildAliasedBranchProgram(low uint64, target *phr.Reg, iters int) (*isa.Program, error) {
	a := isa.NewAssembler()
	a.Org(AttackerBase)
	a.Label("main")
	a.MovI(rIter, 0)
	a.MovI(rIters, int64(iters))
	a.MovI(rOne, 1)
	a.MovI(rTable, outcomeTableAddr)
	a.Align(slotAlign, 0)
	a.Label("loop")
	EmitWritePHR(a, "wrp", target, "landing")
	a.Align(slotAlign, WriteContOffset(target))
	a.Label("landing")
	// Straight-line from the chain landing to the aliased branch: no taken
	// branches, so the PHR still holds target at the branch.
	a.ShlI(isa.R10, rIter, 3)
	a.Add(isa.R10, rTable, isa.R10)
	a.Ld(rOutcome, isa.R10, 0)
	a.Align(slotAlign, low)
	a.Label("alias")
	a.Br(isa.EQ, rOutcome, rOne, "after") // "je .+1": both directions converge
	a.Label("after")
	a.AddI(rIter, rIter, 1)
	a.Br(isa.LT, rIter, rIters, "loop")
	a.Halt()
	p, err := a.Assemble()
	if err != nil {
		return nil, err
	}
	aliasAddr := p.MustSymbol("alias")
	if aliasAddr&0xffff != low {
		return nil, fmt.Errorf("core: alias misplaced: %#x vs low %#x", aliasAddr, low)
	}
	return p, nil
}

// WritePHT is Attack Primitive 2, "Write_PHT(PC, PHR, value)": it drives
// the PHT entry reached by the victim's branch at (pc, target-PHR) to a
// saturated taken or not-taken state. An alternating warm-up forces
// mispredictions so the entry cascades into the full-history tagged table,
// then eight executions with the desired outcome saturate the 3-bit
// counter (§4.3).
func WritePHT(m *cpu.Machine, pc uint64, target *phr.Reg, taken bool) error {
	outcomes := []bool{true, false, true, false, true, false}
	for i := 0; i < 8; i++ {
		outcomes = append(outcomes, taken)
	}
	p, _, err := aliasedBranchProgram(m, pc, target, outcomes)
	if err != nil {
		return err
	}
	return m.Run(p, "main")
}

// ReadPHT is Attack Primitive 3, "Read_PHT(PC, PHR)": it probes the entry
// at (pc, target-PHR) with `probes` taken executions and returns how many
// of them mispredicted — the paper's counter readout, where 4 mispredicts
// mean the entry sat at strongly-not-taken, 2 that it had moved two steps,
// and 0 that it already predicted taken (§4.4). Compose with WritePHT
// (prime) and a victim run (test) for the full prime+test+probe sequence.
func ReadPHT(m *cpu.Machine, pc uint64, target *phr.Reg, probes int) (int, error) {
	if probes <= 0 {
		probes = 4
	}
	outcomes := make([]bool, probes)
	for i := range outcomes {
		outcomes[i] = true
	}
	p, aliasAddr, err := aliasedBranchProgram(m, pc, target, outcomes)
	if err != nil {
		return 0, err
	}
	m.ResetStats()
	if err := m.Run(p, "main"); err != nil {
		return 0, err
	}
	return int(m.Branch(aliasAddr).Mispredicted), nil
}

// probePHRCollision executes one not-taken probe of the aliased branch at
// (pc, cand) and reports whether it mispredicted — the collision test of
// Figure 5. The caller interleaves victim runs between probes.
func probePHRCollision(m *cpu.Machine, pc uint64, cand *phr.Reg) (bool, error) {
	p, aliasAddr, err := aliasedBranchProgram(m, pc, cand, []bool{false})
	if err != nil {
		return false, err
	}
	before := m.Branch(aliasAddr).Mispredicted
	if err := m.Run(p, "main"); err != nil {
		return false, err
	}
	return m.Branch(aliasAddr).Mispredicted > before, nil
}

// RunAliased executes a conditional branch aliasing victimPC with the given
// path history once per scheduled outcome, returning how many executions
// mispredicted. It is the raw measurement behind Write_PHT/Read_PHT, also
// used by the Observation-2 counter-width experiment.
func RunAliased(m *cpu.Machine, victimPC uint64, target *phr.Reg, outcomes []bool) (int, error) {
	p, aliasAddr, err := aliasedBranchProgram(m, victimPC, target, outcomes)
	if err != nil {
		return 0, err
	}
	before := m.Branch(aliasAddr).Mispredicted
	if err := m.Run(p, "main"); err != nil {
		return 0, err
	}
	return int(m.Branch(aliasAddr).Mispredicted - before), nil
}

// DoubletCandidateRates runs the Figure 4 train/test experiment for doublet
// k with every candidate value X, returning the test branch's misprediction
// rate per X: ~50% for X == P_k and ~0% otherwise.
func DoubletCandidateRates(m *cpu.Machine, v Victim, known *phr.Reg, k, iters int) ([4]float64, error) {
	var rates [4]float64
	if iters <= 0 {
		iters = 48
	}
	if v.Setup != nil {
		v.Setup(m)
	}
	rt, err := newReadTemplate(m, v)
	if err != nil {
		return rates, err
	}
	for x := 0; x < 4; x++ {
		r, err := rt.candidateRate(m, known, k, phr.Doublet(x), iters)
		if err != nil {
			return rates, err
		}
		rates[x] = r
	}
	return rates, nil
}

// BuildCaptureProgram assembles the canonical capture program: victim at
// VictimBase, a Clear_PHR chain, a 64 KiB-aligned call site (label
// "cap_call", the Pathfinder Entry anchor) and a halt pad. Entry label:
// "cap_main".
func BuildCaptureProgram(m *cpu.Machine, v Victim) (*isa.Program, error) {
	return buildCaptureProgram(m, v)
}
