package core

import (
	"testing"

	"pathfinder/internal/cpu"
	"pathfinder/internal/wire"
)

// TestExtendedResultWireRoundTrip runs a real recovery and round-trips its
// result through the wire codec: the decoded artifact must be equivalent in
// every field the AES resume path consumes — capture-program content hash,
// symbols, recovered path, anchors — and must re-encode to identical bytes.
func TestExtendedResultWireRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("extended read in long mode only")
	}
	v := loopVictim(20)
	m := cpu.New(cpu.Options{Seed: 4})
	res, err := ExtendedReadPHR(m, v, ExtendedOptions{})
	if err != nil {
		t.Fatal(err)
	}

	w := &wire.Writer{}
	res.EncodeWire(w)
	first := append([]byte(nil), w.Bytes()...)

	r := wire.NewReader(first)
	got := DecodeWireExtendedResult(r)
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	if r.Remaining() != 0 {
		t.Fatalf("%d trailing bytes", r.Remaining())
	}

	if got.Path.Complete != res.Path.Complete || len(got.Path.Steps) != len(res.Path.Steps) {
		t.Fatalf("path shape mismatch: %d steps, complete=%v", len(got.Path.Steps), got.Path.Complete)
	}
	for i := range res.Path.Steps {
		if got.Path.Steps[i] != res.Path.Steps[i] {
			t.Fatalf("path step %d differs", i)
		}
	}
	if got.CaptureProgram.Hash() != res.CaptureProgram.Hash() {
		t.Fatal("capture program hash changed across the wire")
	}
	for _, sym := range []string{"cap_call", "vback"} {
		if got.CaptureProgram.MustSymbol(sym) != res.CaptureProgram.MustSymbol(sym) {
			t.Fatalf("symbol %q moved across the wire", sym)
		}
	}
	if got.Entry != res.Entry || got.Final != res.Final || got.Probes != res.Probes {
		t.Fatalf("anchors/probes differ: %+v", got)
	}
	if (got.Window == nil) != (res.Window == nil) {
		t.Fatal("window presence differs")
	}
	if got.Window != nil && !got.Window.Equal(res.Window) {
		t.Fatal("window register differs")
	}
	if len(got.Ext) != len(res.Ext) {
		t.Fatalf("extension length %d, want %d", len(got.Ext), len(res.Ext))
	}

	// Determinism: re-encoding the decoded result reproduces the bytes.
	w2 := &wire.Writer{}
	got.EncodeWire(w2)
	if string(w2.Bytes()) != string(first) {
		t.Fatal("re-encoded bytes differ from the original encoding")
	}
}

func TestExtendedResultWireRejectsTruncation(t *testing.T) {
	if testing.Short() {
		t.Skip("extended read in long mode only")
	}
	v := loopVictim(20)
	m := cpu.New(cpu.Options{Seed: 4})
	res, err := ExtendedReadPHR(m, v, ExtendedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	w := &wire.Writer{}
	res.EncodeWire(w)
	full := w.Bytes()
	for _, n := range []int{0, 1, 5, 64, len(full) / 3, len(full) / 2, len(full) - 1} {
		r := wire.NewReader(full[:n])
		DecodeWireExtendedResult(r)
		if r.Err() == nil {
			t.Fatalf("truncation to %d of %d bytes decoded cleanly", n, len(full))
		}
	}
}
