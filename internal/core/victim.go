// Package core implements the Pathfinder attack primitives of §4 and §5 of
// the paper: Shift_PHR / Clear_PHR / Write_PHR gadget generation, and the
// runtime primitives Write_PHR, Read_PHR, Write_PHT, Read_PHT and
// Extended_Read_PHR, all built from ordinary branches executed on the
// simulated machine. The primitives observe only what a real attacker can:
// code layout, shared-cache timing, and per-branch misprediction counts.
package core

import (
	"fmt"

	"pathfinder/internal/cpu"
	"pathfinder/internal/isa"
)

// Address-space layout shared by every generated attack program. The victim
// is always emitted at VictimBase so its branch addresses — and therefore
// its PHR footprints — are identical across all the programs an attack
// generates. Attacker gadgets live above AttackerBase. Both bases have zero
// low 16 bits so gadget alignment starts clean.
const (
	VictimBase   = 0x0100_0000
	AttackerBase = 0x4000_0000

	// AliasBase is where attacker branches that must collide with a victim
	// branch are placed: AliasBase | (victimPC & 0xffff) shares all
	// PHT-relevant address bits with the victim PC (§5, Figure 5).
	AliasBase = 0x7000_0000
)

// Victim describes code under attack. Emit writes the victim's instructions
// into an assembler whose cursor sits at VictimBase; Entry is the label the
// attack calls or runs. Setup (optional) initialises victim memory before
// each set of runs.
type Victim struct {
	Entry string
	Emit  func(a *isa.Assembler)
	Setup func(m *cpu.Machine)
	// Transfers maps the label of a SYSCALL/EENTER instruction to the
	// label of its handler, information Pathfinder needs because the
	// binding lives in the machine rather than the binary (§7).
	Transfers map[string]string
}

// Build assembles the victim standalone at VictimBase.
func (v Victim) Build() (*isa.Program, error) {
	if v.Emit == nil || v.Entry == "" {
		return nil, fmt.Errorf("core: victim needs Emit and Entry")
	}
	a := isa.NewAssembler()
	a.Org(VictimBase)
	v.Emit(a)
	p, err := a.Assemble()
	if err != nil {
		return nil, fmt.Errorf("core: assembling victim: %w", err)
	}
	if _, ok := p.SymbolAddr(v.Entry); !ok {
		return nil, fmt.Errorf("core: victim entry %q not defined", v.Entry)
	}
	return p, nil
}

// emitInto writes the victim at VictimBase into a larger attack program and
// moves the cursor to AttackerBase for the harness. The harness relies on
// single-byte instruction strides (e.g. the return pad at call site + 1),
// so any stride the victim selected is reset.
func (v Victim) emitInto(a *isa.Assembler) {
	a.Org(VictimBase)
	v.Emit(a)
	a.Stride(1)
	a.Org(AttackerBase)
}
