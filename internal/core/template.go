package core

import (
	"fmt"

	"pathfinder/internal/cpu"
	"pathfinder/internal/isa"
	"pathfinder/internal/phr"
)

// The attack primitives execute orders of magnitude more programs than they
// have program *shapes*: every Write_PHT/Read_PHT probe is the same aliased
// branch harness with a different write-chain plan, and every Read_PHR
// candidate is the same train/test gadget with a different candidate value.
// Re-assembling those from scratch per call dominated the hot paths (label
// formatting and symbol maps were ~99% of the AES attack's allocations), so
// the primitives assemble each shape once as a *template* and re-patch the
// instruction addresses in place per call.
//
// Patching is behavior-preserving because the predictor state only observes
// a branch's low 16 address bits and a target's low 6 bits (PHR footprints,
// CBP index/tag and base-table hashes); the patch walk reproduces the
// assembler's exact Align placement, so patched programs are byte-for-byte
// identical in every predictor-visible coordinate to what a fresh Assemble
// would produce. Program-order indices never change, so the pre-resolved
// TargetIdx dispatch stays valid; Program.Reindex refreshes the remaining
// address-derived views.

// coreCaches hangs the per-machine template cache off cpu.Machine.Aux.
type coreCaches struct {
	alias map[uint64]*aliasTemplate // keyed by victimPC low 16 bits
}

func cachesOf(m *cpu.Machine) *coreCaches {
	if c, ok := m.Aux.(*coreCaches); ok {
		return c
	}
	c := &coreCaches{alias: make(map[uint64]*aliasTemplate)}
	m.Aux = c
	return c
}

// alignAddr is the assembler's Align placement rule: the smallest address
// >= cursor congruent to off modulo bound.
func alignAddr(cursor, bound, off uint64) uint64 {
	next := cursor&^(bound-1) | off
	if next < cursor {
		next += bound
	}
	return next
}

// aliasTemplate is the pre-assembled aliasedBranchProgram for one victim-PC
// low-16 pattern. Instruction layout (PHR size n, all stride 1):
//
//	0..3        movi rIter/rIters/rOne/rTable   (rIters.Imm patched)
//	4..3+n      Write_PHR chain slots           (addresses patched per plan)
//	4+n..6+n    landing: shli/add/ld            (page follows the chain)
//	7+n         aliased BR                      (low 16 bits = low)
//	8+n..10+n   addi / backedge BR / halt
type aliasTemplate struct {
	prog    *isa.Program
	low     uint64
	n       int
	scratch []uint8 // writePlan buffer, n+3 bytes
}

func newAliasTemplate(n int, low uint64) (*aliasTemplate, error) {
	p, err := buildAliasedBranchProgram(low, phr.New(n), 1)
	if err != nil {
		return nil, err
	}
	if len(p.Instrs) != n+11 {
		return nil, fmt.Errorf("core: alias template has %d instructions, want %d", len(p.Instrs), n+11)
	}
	return &aliasTemplate{prog: p, low: low, n: n, scratch: make([]uint8, n+3)}, nil
}

// patch re-addresses the template for a new target register and iteration
// count, returning the aliased branch's address.
func (t *aliasTemplate) patch(target *phr.Reg, iters int) (uint64, error) {
	if target.Size() != t.n {
		return 0, fmt.Errorf("core: target size %d != template PHR size %d", target.Size(), t.n)
	}
	plan := computePlan(t.scratch, target)
	ins := t.prog.Instrs
	cursor := uint64(AttackerBase)
	for i := 0; i < 4; i++ {
		ins[i].Addr = cursor
		cursor++
	}
	ins[1].Imm = int64(iters)
	for i := 0; i < t.n; i++ {
		off := uint64(0)
		if i > 0 {
			off = uint64(swap2(plan[i-1]))
		}
		cursor = alignAddr(cursor, slotAlign, off)
		ins[4+i].Addr = cursor
		cursor++
	}
	cursor = alignAddr(cursor, slotAlign, WriteContOffset(target))
	for i := 4 + t.n; i < 7+t.n; i++ {
		ins[i].Addr = cursor
		cursor++
	}
	cursor = alignAddr(cursor, slotAlign, t.low)
	aliasAddr := cursor
	for i := 7 + t.n; i < len(ins); i++ {
		ins[i].Addr = cursor
		cursor++
	}
	if err := t.prog.Reindex(); err != nil {
		return 0, err
	}
	if aliasAddr&0xffff != t.low {
		return 0, fmt.Errorf("core: alias misplaced: %#x vs low %#x", aliasAddr, t.low)
	}
	return aliasAddr, nil
}

// readTemplate is the pre-assembled Figure 4 train/test gadget for one
// victim, reused across every (doublet, candidate) pair of a Read_PHR call.
// The per-k shift chain of the fresh-build path is replaced by a maximal
// n-1 slot chain plus a patched jump-in: entering at slot n-shift executes
// exactly `shift` zero-footprint taken jumps (the jump-in is the first),
// and the final chain jump lands on the test branch carrying the
// candidate's doublet-0 footprint — the same footprint sequence, branch
// count and low-16 address bits as the fresh build for that k. shift == 0
// (the top doublet) cannot be expressed as a jump chain and stays on the
// fresh-build path.
type readTemplate struct {
	prog    *isa.Program
	v       Victim
	n       int
	base    int      // index of the first attacker instruction ("main")
	cand    *phr.Reg // scratch candidate register
	scratch []uint8  // writePlan buffer
}

func newReadTemplate(m *cpu.Machine, v Victim) (*readTemplate, error) {
	n := m.Arch().PHRSize
	zero := phr.New(n)
	a := isa.NewAssembler()
	v.emitInto(a)
	a.Label("main")
	a.MovI(rIter, 0)
	a.MovI(rIters, 0)
	a.MovI(rOne, 1)
	a.Label("loop")
	a.Rand(rCoin)
	a.And(rCoin, rCoin, rOne)
	a.Label("train")
	a.Br(isa.EQ, rCoin, rOne, "pathA")
	EmitWritePHR(a, "wrB", zero, "test")
	a.Align(slotAlign, 0)
	a.Label("pathA")
	EmitClearPHR(a, "clrA", n, "callsite")
	a.Align(slotAlign, 0)
	a.Label("callsite")
	a.Call(v.Entry)
	a.Nop()
	a.Align(slotAlign, 0)
	a.Label("rt_ji")
	a.Jmp("rt_s0")
	for i := 0; i < n-1; i++ {
		a.Align(slotAlign, 0)
		a.Label(fmt.Sprintf("rt_s%d", i))
		next := "test"
		if i+1 < n-1 {
			next = fmt.Sprintf("rt_s%d", i+1)
		}
		a.Jmp(next)
	}
	a.Align(slotAlign, 0) // WriteContOffset of the zero register
	a.Label("test")
	a.Br(isa.EQ, rCoin, rOne, "merge")
	a.Label("merge")
	a.AddI(rIter, rIter, 1)
	a.Br(isa.LT, rIter, rIters, "loop")
	a.Halt()
	p, err := a.Assemble()
	if err != nil {
		return nil, err
	}
	base, ok := p.IndexOf(p.MustSymbol("main"))
	if !ok {
		return nil, fmt.Errorf("core: read template entry resolves to a gap")
	}
	if len(p.Instrs) != base+3*n+12 {
		return nil, fmt.Errorf("core: read template has %d instructions, want %d", len(p.Instrs), base+3*n+12)
	}
	return &readTemplate{prog: p, v: v, n: n, base: base, cand: phr.New(n), scratch: make([]uint8, n+3)}, nil
}

// patch re-addresses the attacker half for a new candidate register, shift
// count (>= 1) and iteration count. Victim instructions never move.
func (t *readTemplate) patch(cand *phr.Reg, shift, iters int) error {
	plan := computePlan(t.scratch, cand)
	ins := t.prog.Instrs
	b, n := t.base, t.n
	cursor := uint64(AttackerBase)
	for i := b; i < b+6; i++ {
		ins[i].Addr = cursor
		cursor++
	}
	ins[b+1].Imm = int64(iters)
	for i := 0; i < n; i++ { // wrB chain
		off := uint64(0)
		if i > 0 {
			off = uint64(swap2(plan[i-1]))
		}
		cursor = alignAddr(cursor, slotAlign, off)
		ins[b+6+i].Addr = cursor
		cursor++
	}
	for i := 0; i < n; i++ { // clrA chain
		cursor = alignAddr(cursor, slotAlign, 0)
		ins[b+6+n+i].Addr = cursor
		cursor++
	}
	cursor = alignAddr(cursor, slotAlign, 0)
	ins[b+6+2*n].Addr = cursor // callsite
	cursor++
	ins[b+7+2*n].Addr = cursor // return-pad nop at callsite+1
	cursor++
	ji := b + 8 + 2*n
	cursor = alignAddr(cursor, slotAlign, 0)
	ins[ji].Addr = cursor
	cursor++
	for i := 0; i < n-1; i++ { // maximal shift chain
		cursor = alignAddr(cursor, slotAlign, 0)
		ins[ji+1+i].Addr = cursor
		cursor++
	}
	testIdx := b + 8 + 3*n
	cursor = alignAddr(cursor, slotAlign, WriteContOffset(cand))
	for i := testIdx; i < len(ins); i++ {
		ins[i].Addr = cursor
		cursor++
	}
	// Enter the chain so that exactly `shift` taken jumps run: the jump-in
	// plus slots n-shift..n-2. A single shift jumps straight to the test
	// branch, injecting the candidate's doublet-0 footprint itself.
	if shift == 1 {
		ins[ji].TargetIdx = int32(testIdx)
	} else {
		ins[ji].TargetIdx = int32(ji + 1 + (n - shift))
	}
	return t.prog.Reindex()
}

// candidateRate is readDoubletCandidate on the template: one train/test
// experiment for doublet k and candidate x, returning the test branch's
// misprediction rate.
func (t *readTemplate) candidateRate(m *cpu.Machine, known *phr.Reg, k int, x phr.Doublet, iters int) (float64, error) {
	n := t.n
	shift := n - 1 - k
	if shift == 0 {
		return readDoubletCandidate(m, t.v, known, k, x, iters)
	}
	cand := t.cand
	cand.Clear()
	cand.SetDoublet(n-1, x)
	for j := 0; j < k; j++ {
		cand.SetDoublet(n-1-k+j, known.Doublet(j))
	}
	if err := t.patch(cand, shift, iters); err != nil {
		return 0, err
	}
	testAddr := t.prog.Instrs[t.base+8+3*n].Addr
	m.ResetStats()
	if err := m.Run(t.prog, "main"); err != nil {
		return 0, err
	}
	return m.Branch(testAddr).MispredictRate(), nil
}
