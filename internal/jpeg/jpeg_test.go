package jpeg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randBlock(rng *rand.Rand, max int32) Block {
	var b Block
	for i := range b {
		b[i] = rng.Int31n(2*max+1) - max
	}
	return b
}

func TestDCTRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		var in Block
		for i := range in {
			in[i] = rng.Int31n(256) - 128
		}
		out := IDCT(FDCT(in))
		for i := range in {
			if d := in[i] - out[i]; d < -1 || d > 1 {
				t.Fatalf("trial %d idx %d: %d -> %d", trial, i, in[i], out[i])
			}
		}
	}
}

func TestDCTDCOnly(t *testing.T) {
	var in Block
	for i := range in {
		in[i] = 64 // flat block
	}
	c := FDCT(in)
	if c[0] != 512 { // 8*64 = DC * 8 with our normalisation: 64*8 = 512
		t.Fatalf("DC coefficient %d, want 512", c[0])
	}
	for i := 1; i < 64; i++ {
		if c[i] != 0 {
			t.Fatalf("AC coefficient %d nonzero: %d", i, c[i])
		}
	}
}

func TestQualityTable(t *testing.T) {
	if _, err := QualityTable(0); err == nil {
		t.Fatal("quality 0 accepted")
	}
	if _, err := QualityTable(101); err == nil {
		t.Fatal("quality 101 accepted")
	}
	q50, _ := QualityTable(50)
	for i, v := range stdLuminance {
		if q50[i] != v {
			t.Fatal("quality 50 must be the unscaled Annex-K table")
		}
	}
	q90, _ := QualityTable(90)
	q10, _ := QualityTable(10)
	for i := range q90 {
		if q90[i] > q50[i] || q10[i] < q50[i] {
			t.Fatal("quality scaling not monotonic")
		}
		if q90[i] < 1 || q10[i] > 255 {
			t.Fatal("quantizer out of range")
		}
	}
}

func TestQuantizeRoundTrip(t *testing.T) {
	qt, _ := QualityTable(75)
	if err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := randBlock(rng, 1000)
		deq := qt.Dequantize(qt.Quantize(b))
		for i := range b {
			d := b[i] - deq[i]
			if d < 0 {
				d = -d
			}
			if d > qt[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestZigZagPermutation(t *testing.T) {
	var b Block
	for i := range b {
		b[i] = int32(i)
	}
	if UnZigZag(ZigZag(b)) != b {
		t.Fatal("zigzag not a permutation inverse")
	}
	z := ZigZag(b)
	// First few entries of the standard scan.
	want := []int32{0, 1, 8, 16, 9, 2}
	for i, w := range want {
		if z[i] != w {
			t.Fatalf("zigzag[%d] = %d, want %d", i, z[i], w)
		}
	}
}

func TestCategoryExtend(t *testing.T) {
	for v := int32(-2047); v <= 2047; v++ {
		size, bits := category(v)
		if got := extend(bits, size); got != v {
			t.Fatalf("category/extend mismatch for %d: got %d", v, got)
		}
	}
	if s, _ := category(0); s != 0 {
		t.Fatal("category(0) must be 0")
	}
}

func TestHuffmanBlockRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		var zz Block
		// Sparse blocks, like real quantized data.
		for i := 0; i < 64; i++ {
			if rng.Intn(4) == 0 {
				zz[i] = rng.Int31n(200) - 100
			}
		}
		prev := rng.Int31n(100) - 50
		w := &bitWriter{}
		dc, err := encodeBlock(w, zz, prev)
		if err != nil {
			t.Fatal(err)
		}
		if dc != zz[0] {
			t.Fatal("encodeBlock must return the block DC")
		}
		r := &bitReader{buf: w.flush()}
		got, gotDC, err := decodeBlock(r, prev)
		if err != nil {
			t.Fatal(err)
		}
		if got != zz || gotDC != zz[0] {
			t.Fatalf("trial %d: block mismatch", trial)
		}
	}
}

func TestBitIO(t *testing.T) {
	w := &bitWriter{}
	w.write(0b101, 3)
	w.write(0b0110011, 7)
	w.write(0xffff, 16)
	buf := w.flush()
	r := &bitReader{buf: buf}
	if v, _ := r.bits(3); v != 0b101 {
		t.Fatalf("bits(3) = %b", v)
	}
	if v, _ := r.bits(7); v != 0b0110011 {
		t.Fatalf("bits(7) = %b", v)
	}
	if v, _ := r.bits(16); v != 0xffff {
		t.Fatalf("bits(16) = %x", v)
	}
	if _, err := r.bits(16); err == nil {
		t.Fatal("reading past the end must fail")
	}
}

func makeTestImage(w, h int, f func(x, y int) byte) []byte {
	pix := make([]byte, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			pix[y*w+x] = f(x, y)
		}
	}
	return pix
}

func TestCodecRoundTripQuality(t *testing.T) {
	const w, h = 48, 32
	pix := makeTestImage(w, h, func(x, y int) byte {
		return byte(128 + 100*math.Sin(float64(x)/7)*math.Cos(float64(y)/5))
	})
	for _, q := range []int{30, 60, 90} {
		enc, err := Encode(pix, w, h, q)
		if err != nil {
			t.Fatal(err)
		}
		dec, gw, gh, err := Decode(enc)
		if err != nil {
			t.Fatal(err)
		}
		if gw != w || gh != h {
			t.Fatalf("dimensions %dx%d", gw, gh)
		}
		var mse float64
		for i := range pix {
			d := float64(pix[i]) - float64(dec[i])
			mse += d * d
		}
		mse /= float64(len(pix))
		psnr := 10 * math.Log10(255*255/mse)
		if psnr < 25 {
			t.Fatalf("quality %d: PSNR %.1f dB too low", q, psnr)
		}
	}
}

func TestCodecFlatImageIsTiny(t *testing.T) {
	const w, h = 64, 64
	pix := makeTestImage(w, h, func(x, y int) byte { return 200 })
	enc, err := Encode(pix, w, h, 75)
	if err != nil {
		t.Fatal(err)
	}
	if len(enc) > 9+w*h/32 {
		t.Fatalf("flat image encoded to %d bytes", len(enc))
	}
	dec, _, _, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	for i := range dec {
		if d := int(dec[i]) - 200; d < -3 || d > 3 {
			t.Fatalf("flat image pixel %d decoded to %d", i, dec[i])
		}
	}
}

func TestDecodeBlocksConstancy(t *testing.T) {
	// A flat image must decode to blocks whose columns and rows are all
	// constant; a noisy one mostly not.
	const w, h = 16, 16
	flat, _ := Encode(makeTestImage(w, h, func(x, y int) byte { return 99 }), w, h, 75)
	_, blocks, err := DecodeBlocks(flat)
	if err != nil {
		t.Fatal(err)
	}
	for i := range blocks {
		if got := ConstantCount(&blocks[i]); got != 16 {
			t.Fatalf("flat block %d: constant count %d, want 16", i, got)
		}
	}
	rng := rand.New(rand.NewSource(9))
	noisy, _ := Encode(makeTestImage(w, h, func(x, y int) byte { return byte(rng.Intn(256)) }), w, h, 95)
	_, nblocks, err := DecodeBlocks(noisy)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for i := range nblocks {
		total += ConstantCount(&nblocks[i])
	}
	if total > 8 {
		t.Fatalf("noisy blocks report %d constant rows/cols", total)
	}
}

func TestIDCTBlockMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		b := randBlock(rng, 300)
		fast, _, _ := IDCTBlock(&b)
		ref := IDCT(b)
		for i := range fast {
			if d := fast[i] - ref[i]; d < -1 || d > 1 {
				t.Fatalf("trial %d idx %d: fast %d ref %d", trial, i, fast[i], ref[i])
			}
		}
	}
}

func TestIDCTBlockFlagsMatchPredicates(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 100; trial++ {
		b := randBlock(rng, 10) // small values: frequent zeros
		// Zero a couple of columns and rows deliberately.
		zc, zr := rng.Intn(8), rng.Intn(8)
		for k := 1; k < 8; k++ {
			b[k*8+zc] = 0
			b[zr*8+k] = 0
		}
		_, cols, rows := IDCTBlock(&b)
		for c := 0; c < 8; c++ {
			if cols[c] != ConstantColumn(&b, c) {
				t.Fatalf("col %d flag mismatch", c)
			}
		}
		for r := 0; r < 8; r++ {
			if rows[r] != ConstantRow(&b, r) {
				t.Fatalf("row %d flag mismatch", r)
			}
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, _, err := Decode([]byte("bogus")); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := Encode(make([]byte, 10), 3, 4, 75); err == nil {
		t.Fatal("bad dimensions accepted")
	}
	if _, err := Encode(make([]byte, 12), 3, 4, 0); err == nil {
		t.Fatal("bad quality accepted")
	}
	// Truncated payload.
	pix := makeTestImage(16, 16, func(x, y int) byte { return byte(x * y) })
	enc, _ := Encode(pix, 16, 16, 75)
	if _, _, _, err := Decode(enc[:len(enc)-4]); err == nil {
		t.Fatal("truncated stream accepted")
	}
}

func BenchmarkEncode64(b *testing.B) {
	pix := makeTestImage(64, 64, func(x, y int) byte { return byte(x ^ y) })
	for i := 0; i < b.N; i++ {
		if _, err := Encode(pix, 64, 64, 75); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecode64(b *testing.B) {
	pix := makeTestImage(64, 64, func(x, y int) byte { return byte(x ^ y) })
	enc, _ := Encode(pix, 64, 64, 75)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := Decode(enc); err != nil {
			b.Fatal(err)
		}
	}
}
