package jpeg

import "fmt"

// stdLuminance is the Annex-K luminance quantization table, row-major.
var stdLuminance = [64]int32{
	16, 11, 10, 16, 24, 40, 51, 61,
	12, 12, 14, 19, 26, 58, 60, 55,
	14, 13, 16, 24, 40, 57, 69, 56,
	14, 17, 22, 29, 51, 87, 80, 62,
	18, 22, 37, 56, 68, 109, 103, 77,
	24, 35, 55, 64, 81, 104, 113, 92,
	49, 64, 78, 87, 103, 121, 120, 101,
	72, 92, 95, 98, 112, 100, 103, 99,
}

// QuantTable is a positive 8×8 divisor table.
type QuantTable [64]int32

// QualityTable scales the standard luminance table with the libjpeg
// quality mapping (1..100; 50 is the unscaled table).
func QualityTable(quality int) (QuantTable, error) {
	if quality < 1 || quality > 100 {
		return QuantTable{}, fmt.Errorf("jpeg: quality %d out of range [1,100]", quality)
	}
	var scale int32
	if quality < 50 {
		scale = int32(5000 / quality)
	} else {
		scale = int32(200 - 2*quality)
	}
	var q QuantTable
	for i, v := range stdLuminance {
		s := (v*scale + 50) / 100
		if s < 1 {
			s = 1
		}
		if s > 255 {
			s = 255
		}
		q[i] = s
	}
	return q, nil
}

// Quantize divides coefficients by the table with rounding toward zero
// bias-corrected as in libjpeg.
func (q *QuantTable) Quantize(b Block) Block {
	var out Block
	for i := range b {
		v := b[i]
		d := q[i]
		if v >= 0 {
			out[i] = (v + d/2) / d
		} else {
			out[i] = -((-v + d/2) / d)
		}
	}
	return out
}

// Dequantize multiplies quantized coefficients back.
func (q *QuantTable) Dequantize(b Block) Block {
	var out Block
	for i := range b {
		out[i] = b[i] * q[i]
	}
	return out
}

// zigzag[i] is the row-major index of the i-th coefficient in zigzag order.
var zigzag = [64]int{
	0, 1, 8, 16, 9, 2, 3, 10,
	17, 24, 32, 25, 18, 11, 4, 5,
	12, 19, 26, 33, 40, 48, 41, 34,
	27, 20, 13, 6, 7, 14, 21, 28,
	35, 42, 49, 56, 57, 50, 43, 36,
	29, 22, 15, 23, 30, 37, 44, 51,
	58, 59, 52, 45, 38, 31, 39, 46,
	53, 60, 61, 54, 47, 55, 62, 63,
}

// ZigZag reorders a row-major block into zigzag scan order.
func ZigZag(b Block) Block {
	var out Block
	for i, src := range zigzag {
		out[i] = b[src]
	}
	return out
}

// UnZigZag inverts ZigZag.
func UnZigZag(b Block) Block {
	var out Block
	for i, dst := range zigzag {
		out[dst] = b[i]
	}
	return out
}
