package jpeg

import "fmt"

// Canonical Huffman coding with the JPEG Annex-K luminance tables: DC
// difference categories and AC (run,size) symbols with EOB/ZRL escapes.

// bitWriter packs MSB-first bits.
type bitWriter struct {
	buf  []byte
	acc  uint32
	nacc uint
}

func (w *bitWriter) write(code uint32, n uint) {
	for n > 0 {
		n--
		w.acc = w.acc<<1 | (code>>n)&1
		w.nacc++
		if w.nacc == 8 {
			w.buf = append(w.buf, byte(w.acc))
			w.acc, w.nacc = 0, 0
		}
	}
}

func (w *bitWriter) flush() []byte {
	if w.nacc > 0 {
		w.buf = append(w.buf, byte(w.acc<<(8-w.nacc)))
		w.acc, w.nacc = 0, 0
	}
	return w.buf
}

// bitReader unpacks MSB-first bits.
type bitReader struct {
	buf  []byte
	pos  int
	acc  uint32
	nacc uint
}

func (r *bitReader) bit() (uint32, error) {
	if r.nacc == 0 {
		if r.pos >= len(r.buf) {
			return 0, fmt.Errorf("jpeg: bitstream exhausted")
		}
		r.acc = uint32(r.buf[r.pos])
		r.pos++
		r.nacc = 8
	}
	r.nacc--
	return (r.acc >> r.nacc) & 1, nil
}

func (r *bitReader) bits(n uint) (uint32, error) {
	var v uint32
	for i := uint(0); i < n; i++ {
		b, err := r.bit()
		if err != nil {
			return 0, err
		}
		v = v<<1 | b
	}
	return v, nil
}

// huffTable is a canonical Huffman code built from a JPEG (BITS, HUFFVAL)
// specification.
type huffTable struct {
	codes map[byte]struct {
		code uint32
		len  uint
	}
	// canonical decode arrays indexed by code length 1..16
	minCode [17]int32
	maxCode [17]int32 // -1 when no codes of that length
	valPtr  [17]int
	vals    []byte
}

func newHuffTable(bits [16]int, vals []byte) *huffTable {
	t := &huffTable{
		codes: make(map[byte]struct {
			code uint32
			len  uint
		}),
		vals: vals,
	}
	code := uint32(0)
	k := 0
	for l := 1; l <= 16; l++ {
		t.valPtr[l] = k
		t.minCode[l] = int32(code)
		for i := 0; i < bits[l-1]; i++ {
			t.codes[vals[k]] = struct {
				code uint32
				len  uint
			}{code, uint(l)}
			code++
			k++
		}
		if bits[l-1] > 0 {
			t.maxCode[l] = int32(code) - 1
		} else {
			t.maxCode[l] = -1
		}
		code <<= 1
	}
	return t
}

func (t *huffTable) encode(w *bitWriter, sym byte) error {
	c, ok := t.codes[sym]
	if !ok {
		return fmt.Errorf("jpeg: symbol %#x not in Huffman table", sym)
	}
	w.write(c.code, c.len)
	return nil
}

func (t *huffTable) decode(r *bitReader) (byte, error) {
	code := int32(0)
	for l := 1; l <= 16; l++ {
		b, err := r.bit()
		if err != nil {
			return 0, err
		}
		code = code<<1 | int32(b)
		if t.maxCode[l] >= 0 && code <= t.maxCode[l] {
			return t.vals[t.valPtr[l]+int(code-t.minCode[l])], nil
		}
	}
	return 0, fmt.Errorf("jpeg: invalid Huffman code")
}

// Annex K.3.3.1: luminance DC difference categories.
var dcLumTable = newHuffTable(
	[16]int{0, 1, 5, 1, 1, 1, 1, 1, 1, 0, 0, 0, 0, 0, 0, 0},
	[]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11},
)

// Annex K.3.3.2: luminance AC (run,size) symbols.
var acLumTable = newHuffTable(
	[16]int{0, 2, 1, 3, 3, 2, 4, 3, 5, 5, 4, 4, 0, 0, 1, 125},
	[]byte{
		0x01, 0x02, 0x03, 0x00, 0x04, 0x11, 0x05, 0x12,
		0x21, 0x31, 0x41, 0x06, 0x13, 0x51, 0x61, 0x07,
		0x22, 0x71, 0x14, 0x32, 0x81, 0x91, 0xa1, 0x08,
		0x23, 0x42, 0xb1, 0xc1, 0x15, 0x52, 0xd1, 0xf0,
		0x24, 0x33, 0x62, 0x72, 0x82, 0x09, 0x0a, 0x16,
		0x17, 0x18, 0x19, 0x1a, 0x25, 0x26, 0x27, 0x28,
		0x29, 0x2a, 0x34, 0x35, 0x36, 0x37, 0x38, 0x39,
		0x3a, 0x43, 0x44, 0x45, 0x46, 0x47, 0x48, 0x49,
		0x4a, 0x53, 0x54, 0x55, 0x56, 0x57, 0x58, 0x59,
		0x5a, 0x63, 0x64, 0x65, 0x66, 0x67, 0x68, 0x69,
		0x6a, 0x73, 0x74, 0x75, 0x76, 0x77, 0x78, 0x79,
		0x7a, 0x83, 0x84, 0x85, 0x86, 0x87, 0x88, 0x89,
		0x8a, 0x92, 0x93, 0x94, 0x95, 0x96, 0x97, 0x98,
		0x99, 0x9a, 0xa2, 0xa3, 0xa4, 0xa5, 0xa6, 0xa7,
		0xa8, 0xa9, 0xaa, 0xb2, 0xb3, 0xb4, 0xb5, 0xb6,
		0xb7, 0xb8, 0xb9, 0xba, 0xc2, 0xc3, 0xc4, 0xc5,
		0xc6, 0xc7, 0xc8, 0xc9, 0xca, 0xd2, 0xd3, 0xd4,
		0xd5, 0xd6, 0xd7, 0xd8, 0xd9, 0xda, 0xe1, 0xe2,
		0xe3, 0xe4, 0xe5, 0xe6, 0xe7, 0xe8, 0xe9, 0xea,
		0xf1, 0xf2, 0xf3, 0xf4, 0xf5, 0xf6, 0xf7, 0xf8,
		0xf9, 0xfa,
	},
)

// category returns the JPEG magnitude category (bit size) of v and the
// category-many magnitude bits encoding it (one's-complement for negative
// values, per F.1.2.1).
func category(v int32) (size uint, bits uint32) {
	a := v
	if a < 0 {
		a = -a
	}
	for a != 0 {
		size++
		a >>= 1
	}
	if v >= 0 {
		return size, uint32(v)
	}
	return size, uint32(v + (1 << size) - 1)
}

// extend inverts category: magnitude bits back to a signed value.
func extend(bits uint32, size uint) int32 {
	if size == 0 {
		return 0
	}
	v := int32(bits)
	if v < 1<<(size-1) {
		v -= 1<<size - 1
	}
	return v
}

// encodeBlock entropy-codes one zigzag-ordered quantized block; prevDC is
// the previous block's DC value for differential coding.
func encodeBlock(w *bitWriter, zz Block, prevDC int32) (int32, error) {
	diff := zz[0] - prevDC
	size, bits := category(diff)
	if size > 11 {
		return 0, fmt.Errorf("jpeg: DC difference %d too large", diff)
	}
	if err := dcLumTable.encode(w, byte(size)); err != nil {
		return 0, err
	}
	w.write(bits, size)

	run := 0
	for k := 1; k < 64; k++ {
		if zz[k] == 0 {
			run++
			continue
		}
		for run >= 16 {
			if err := acLumTable.encode(w, 0xf0); err != nil { // ZRL
				return 0, err
			}
			run -= 16
		}
		size, bits := category(zz[k])
		if size > 10 {
			return 0, fmt.Errorf("jpeg: AC coefficient %d too large", zz[k])
		}
		if err := acLumTable.encode(w, byte(run<<4)|byte(size)); err != nil {
			return 0, err
		}
		w.write(bits, size)
		run = 0
	}
	if run > 0 {
		if err := acLumTable.encode(w, 0x00); err != nil { // EOB
			return 0, err
		}
	}
	return zz[0], nil
}

// decodeBlock inverts encodeBlock, returning the zigzag-ordered block.
func decodeBlock(r *bitReader, prevDC int32) (Block, int32, error) {
	var zz Block
	sizeSym, err := dcLumTable.decode(r)
	if err != nil {
		return zz, 0, err
	}
	bits, err := r.bits(uint(sizeSym))
	if err != nil {
		return zz, 0, err
	}
	zz[0] = prevDC + extend(bits, uint(sizeSym))
	for k := 1; k < 64; {
		sym, err := acLumTable.decode(r)
		if err != nil {
			return zz, 0, err
		}
		if sym == 0x00 { // EOB
			break
		}
		if sym == 0xf0 { // ZRL
			k += 16
			continue
		}
		run := int(sym >> 4)
		size := uint(sym & 0xf)
		k += run
		if k >= 64 {
			return zz, 0, fmt.Errorf("jpeg: AC run overflows block")
		}
		bits, err := r.bits(size)
		if err != nil {
			return zz, 0, err
		}
		zz[k] = extend(bits, size)
		k++
	}
	return zz, zz[0], nil
}
