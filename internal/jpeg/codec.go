package jpeg

import (
	"encoding/binary"
	"fmt"
	"math"
)

// magic identifies the container of this codec's bitstream.
var magic = [4]byte{'P', 'F', 'J', '1'}

// Encode compresses an 8-bit grayscale image (row-major pix, w×h) at the
// given quality into a self-describing bitstream. Images are padded to
// 8-pixel multiples by edge replication.
func Encode(pix []byte, w, h, quality int) ([]byte, error) {
	if w <= 0 || h <= 0 || len(pix) != w*h {
		return nil, fmt.Errorf("jpeg: bad image dimensions %dx%d for %d pixels", w, h, len(pix))
	}
	qt, err := QualityTable(quality)
	if err != nil {
		return nil, err
	}
	bw, bh := (w+7)/8, (h+7)/8
	out := make([]byte, 0, w*h/4+16)
	out = append(out, magic[:]...)
	var hdr [9]byte
	binary.BigEndian.PutUint16(hdr[0:], uint16(w))
	binary.BigEndian.PutUint16(hdr[2:], uint16(h))
	hdr[4] = byte(quality)
	out = append(out, hdr[:5]...)

	wr := &bitWriter{}
	prevDC := int32(0)
	for by := 0; by < bh; by++ {
		for bx := 0; bx < bw; bx++ {
			var samples Block
			for y := 0; y < 8; y++ {
				for x := 0; x < 8; x++ {
					sx, sy := bx*8+x, by*8+y
					if sx >= w {
						sx = w - 1
					}
					if sy >= h {
						sy = h - 1
					}
					samples[y*8+x] = int32(pix[sy*w+sx]) - 128
				}
			}
			zz := ZigZag(qt.Quantize(FDCT(samples)))
			prevDC, err = encodeBlock(wr, zz, prevDC)
			if err != nil {
				return nil, err
			}
		}
	}
	return append(out, wr.flush()...), nil
}

// Header describes an encoded image.
type Header struct {
	Width, Height, Quality int
	BlocksW, BlocksH       int
}

func parseHeader(data []byte) (Header, []byte, error) {
	if len(data) < 9 || [4]byte(data[:4]) != magic {
		return Header{}, nil, fmt.Errorf("jpeg: bad magic")
	}
	h := Header{
		Width:   int(binary.BigEndian.Uint16(data[4:])),
		Height:  int(binary.BigEndian.Uint16(data[6:])),
		Quality: int(data[8]),
	}
	if h.Width == 0 || h.Height == 0 {
		return Header{}, nil, fmt.Errorf("jpeg: zero dimensions")
	}
	h.BlocksW, h.BlocksH = (h.Width+7)/8, (h.Height+7)/8
	return h, data[9:], nil
}

// DecodeBlocks entropy-decodes and dequantizes every coefficient block —
// the decoder state right before the IDCT stage, which is what the victim
// program consumes.
func DecodeBlocks(data []byte) (Header, []Block, error) {
	hdr, payload, err := parseHeader(data)
	if err != nil {
		return hdr, nil, err
	}
	qt, err := QualityTable(hdr.Quality)
	if err != nil {
		return hdr, nil, err
	}
	rd := &bitReader{buf: payload}
	blocks := make([]Block, 0, hdr.BlocksW*hdr.BlocksH)
	prevDC := int32(0)
	for i := 0; i < hdr.BlocksW*hdr.BlocksH; i++ {
		var zz Block
		zz, prevDC, err = decodeBlock(rd, prevDC)
		if err != nil {
			return hdr, nil, fmt.Errorf("jpeg: block %d: %w", i, err)
		}
		blocks = append(blocks, qt.Dequantize(UnZigZag(zz)))
	}
	return hdr, blocks, nil
}

// idct1 performs a 1-D 8-point inverse DCT with the Listing-2 fast path:
// when elements 1..7 are zero the output is the constant in[0]/(2*sqrt 2).
func idct1(in *[8]float64, out *[8]float64) (constant bool) {
	constant = true
	for k := 1; k < 8; k++ {
		if in[k] != 0 {
			constant = false
			break
		}
	}
	if constant {
		v := in[0] / (2 * math.Sqrt2)
		for k := range out {
			out[k] = v
		}
		return true
	}
	for x := 0; x < 8; x++ {
		var sum float64
		for u := 0; u < 8; u++ {
			sum += alpha(u) * in[u] * cosTable[x][u]
		}
		out[x] = sum / 2
	}
	return false
}

// IDCTBlock reconstructs samples from a dequantized block using the
// two-pass column/row structure of the libjpeg IDCT. Following Listing 2
// of the paper, both passes test the *coefficient matrix* for the constant
// fast path: pass 1 skips the column transform when rows 1..7 of a column
// are zero, and pass 2's reported predicate is the symmetric row check.
// The returned flags are exactly the decisions the victim program's
// branches take — the §8 leak.
func IDCTBlock(b *Block) (out Block, constCols, constRows [8]bool) {
	var ws [8][8]float64 // workspace after the column pass
	for c := 0; c < 8; c++ {
		var col, res [8]float64
		for r := 0; r < 8; r++ {
			col[r] = float64(b[r*8+c])
		}
		constCols[c] = idct1(&col, &res)
		for r := 0; r < 8; r++ {
			ws[r][c] = res[r]
		}
	}
	for r := 0; r < 8; r++ {
		constRows[r] = ConstantRow(b, r)
		var res [8]float64
		idct1(&ws[r], &res)
		for c := 0; c < 8; c++ {
			out[r*8+c] = int32(math.Round(res[c]))
		}
	}
	return out, constCols, constRows
}

// Decode reconstructs the grayscale image.
func Decode(data []byte) ([]byte, int, int, error) {
	hdr, blocks, err := DecodeBlocks(data)
	if err != nil {
		return nil, 0, 0, err
	}
	pix := make([]byte, hdr.Width*hdr.Height)
	for bi, b := range blocks {
		bx, by := bi%hdr.BlocksW, bi/hdr.BlocksW
		samples, _, _ := IDCTBlock(&b)
		for y := 0; y < 8; y++ {
			for x := 0; x < 8; x++ {
				sx, sy := bx*8+x, by*8+y
				if sx >= hdr.Width || sy >= hdr.Height {
					continue
				}
				v := samples[y*8+x] + 128
				if v < 0 {
					v = 0
				}
				if v > 255 {
					v = 255
				}
				pix[sy*hdr.Width+sx] = byte(v)
			}
		}
	}
	return pix, hdr.Width, hdr.Height, nil
}
