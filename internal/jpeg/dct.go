// Package jpeg is a from-scratch baseline JPEG-style codec for 8-bit
// grayscale images: forward/inverse DCT, quality-scaled quantization,
// zigzag ordering and Huffman entropy coding over a custom bitstream.
//
// It is the substrate for the §8 image-recovery attack: the decoder's IDCT
// stage carries the constant-row/column fast path of Listing 2, and the
// victim package compiles exactly that control flow to the simulated ISA.
package jpeg

import "math"

// BlockSize is the DCT block edge.
const BlockSize = 8

// Block is an 8×8 coefficient or sample block in row-major order.
type Block [BlockSize * BlockSize]int32

var cosTable [BlockSize][BlockSize]float64

func init() {
	for x := 0; x < BlockSize; x++ {
		for u := 0; u < BlockSize; u++ {
			cosTable[x][u] = math.Cos((2*float64(x) + 1) * float64(u) * math.Pi / 16)
		}
	}
}

func alpha(u int) float64 {
	if u == 0 {
		return 1 / math.Sqrt2
	}
	return 1
}

// FDCT transforms level-shifted samples (−128..127) into DCT coefficients.
func FDCT(in Block) Block {
	var out Block
	for v := 0; v < BlockSize; v++ {
		for u := 0; u < BlockSize; u++ {
			var sum float64
			for y := 0; y < BlockSize; y++ {
				for x := 0; x < BlockSize; x++ {
					sum += float64(in[y*BlockSize+x]) * cosTable[x][u] * cosTable[y][v]
				}
			}
			out[v*BlockSize+u] = int32(math.Round(sum * alpha(u) * alpha(v) / 4))
		}
	}
	return out
}

// IDCT reconstructs level-shifted samples from DCT coefficients. It is the
// reference ("complex computation") path; ConstantColumns/ConstantRows
// report where a conforming decoder takes the Listing-2 fast path instead.
func IDCT(in Block) Block {
	var out Block
	for y := 0; y < BlockSize; y++ {
		for x := 0; x < BlockSize; x++ {
			var sum float64
			for v := 0; v < BlockSize; v++ {
				for u := 0; u < BlockSize; u++ {
					sum += alpha(u) * alpha(v) * float64(in[v*BlockSize+u]) * cosTable[x][u] * cosTable[y][v]
				}
			}
			out[y*BlockSize+x] = int32(math.Round(sum / 4))
		}
	}
	return out
}

// ConstantColumn reports whether column c of the coefficient block has all
// zero entries except possibly the first (rows 1..7 zero): the fast-path
// condition of the column pass in Listing 2.
func ConstantColumn(b *Block, c int) bool {
	for r := 1; r < BlockSize; r++ {
		if b[r*BlockSize+c] != 0 {
			return false
		}
	}
	return true
}

// ConstantRow reports whether row r has all zero entries except possibly
// the first (columns 1..7 zero): the row-pass fast-path condition.
func ConstantRow(b *Block, r int) bool {
	for c := 1; c < BlockSize; c++ {
		if b[r*BlockSize+c] != 0 {
			return false
		}
	}
	return true
}

// ConstantCount returns the number of constant columns plus constant rows
// (0..16) — the per-block complexity measure the §8 reconstruction uses.
func ConstantCount(b *Block) int {
	n := 0
	for c := 0; c < BlockSize; c++ {
		if ConstantColumn(b, c) {
			n++
		}
	}
	for r := 0; r < BlockSize; r++ {
		if ConstantRow(b, r) {
			n++
		}
	}
	return n
}
