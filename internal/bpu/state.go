package bpu

import (
	"math/bits"
	"slices"

	"pathfinder/internal/pht"
)

// Snapshot state for the checkpoint layer: flat copies of every predictor
// structure in the Unit, following the pht state conventions — Save reuses
// destination storage, Restore panics on a structural mismatch, Hash chains
// a cheap FNV-1a style fold.

// CBPState is a saved CBP: base table, tagged tables, and the periodic
// usefulness-decay clock. The clock matters: two CBPs with identical tables
// but different update counts diverge at the next DecayUseful boundary.
type CBPState struct {
	arch    string
	base    pht.BaseState
	tables  []pht.TaggedState
	updates uint64
}

// Save copies the CBP into dst, reusing dst's storage.
func (c *CBP) Save(dst *CBPState) {
	dst.arch = c.cfg.Name
	c.Base.Save(&dst.base)
	if len(dst.tables) != len(c.Tables) {
		dst.tables = make([]pht.TaggedState, len(c.Tables))
	}
	for i, t := range c.Tables {
		t.Save(&dst.tables[i])
	}
	dst.updates = c.updates
}

// Restore overwrites the CBP from a saved state. The state must come from a
// CBP of the same microarchitecture.
func (c *CBP) Restore(s *CBPState) {
	if s.arch != c.cfg.Name || len(s.tables) != len(c.Tables) {
		panic("bpu: restore CBP state across microarchitectures")
	}
	c.Base.Restore(&s.base)
	for i, t := range c.Tables {
		t.Restore(&s.tables[i])
	}
	c.updates = s.updates
}

// RestoreDirty overwrites only the regions each component has marked dirty
// since it last matched a restored state; the decay clock is scalar and
// always copied. Same precondition as the pht RestoreDirty methods: every
// clean region must already match s.
func (c *CBP) RestoreDirty(s *CBPState) {
	if s.arch != c.cfg.Name || len(s.tables) != len(c.Tables) {
		panic("bpu: restore CBP state across microarchitectures")
	}
	c.Base.RestoreDirty(&s.base)
	for i, t := range c.Tables {
		t.RestoreDirty(&s.tables[i])
	}
	c.updates = s.updates
}

// Hash folds the saved CBP into h.
func (s *CBPState) Hash(h uint64) uint64 {
	h = s.base.Hash(h)
	for i := range s.tables {
		h = s.tables[i].Hash(h)
	}
	return mix(h, s.updates)
}

// BTBState is a saved BTB entry array.
type BTBState struct {
	entries []btbEntry
}

// Save copies the BTB into dst, reusing dst's storage.
func (b *BTB) Save(dst *BTBState) {
	dst.entries = append(dst.entries[:0], b.entries...)
}

// Restore overwrites the BTB from a saved state of identical size.
func (b *BTB) Restore(s *BTBState) {
	if len(s.entries) != len(b.entries) {
		panic("bpu: restore BTB state with mismatched geometry")
	}
	copy(b.entries, s.entries)
	b.dirty = 0
}

// RestoreDirty copies only the 64-entry banks whose dirty bit is raised.
func (b *BTB) RestoreDirty(s *BTBState) {
	if len(s.entries) != len(b.entries) {
		panic("bpu: restore BTB state with mismatched geometry")
	}
	bank := len(b.entries) / 64
	for w := b.dirty; w != 0; w &= w - 1 {
		lo := bits.TrailingZeros64(w) * bank
		copy(b.entries[lo:lo+bank], s.entries[lo:lo+bank])
	}
	b.dirty = 0
}

// Hash folds the saved BTB into h.
func (s *BTBState) Hash(h uint64) uint64 {
	for i := range s.entries {
		if s.entries[i].key == 0 {
			continue
		}
		h = mix(h, s.entries[i].key)
		h = mix(h, s.entries[i].target)
	}
	return h
}

// IBPState is a saved IBP, serialized as key-sorted pairs so its hash (and
// a restored map's iteration-independent content) is deterministic.
type IBPState struct {
	keys, targets []uint64
}

// Save copies the IBP into dst, reusing dst's storage.
func (p *IBP) Save(dst *IBPState) {
	dst.keys = dst.keys[:0]
	dst.targets = dst.targets[:0]
	for k := range p.targets {
		dst.keys = append(dst.keys, k)
	}
	slices.Sort(dst.keys)
	for _, k := range dst.keys {
		dst.targets = append(dst.targets, p.targets[k])
	}
}

// Restore overwrites the IBP from a saved state.
func (p *IBP) Restore(s *IBPState) {
	clear(p.targets)
	for i, k := range s.keys {
		p.targets[k] = s.targets[i]
	}
	p.dirty = false
}

// RestoreDirty rebuilds the map only if it was touched since it last
// matched a restored state.
func (p *IBP) RestoreDirty(s *IBPState) {
	if p.dirty {
		p.Restore(s)
	}
}

// Hash folds the saved IBP into h.
func (s *IBPState) Hash(h uint64) uint64 {
	for i := range s.keys {
		h = mix(h, s.keys[i])
		h = mix(h, s.targets[i])
	}
	return h
}

// UnitState is a saved Unit: every predictor structure of one physical core.
type UnitState struct {
	cbp CBPState
	btb BTBState
	ibp IBPState
}

// Save copies the Unit into dst, reusing dst's storage.
func (u *Unit) Save(dst *UnitState) {
	u.CBP.Save(&dst.cbp)
	u.BTB.Save(&dst.btb)
	u.IBP.Save(&dst.ibp)
}

// Restore overwrites the Unit from a saved state.
func (u *Unit) Restore(s *UnitState) {
	u.CBP.Restore(&s.cbp)
	u.BTB.Restore(&s.btb)
	u.IBP.Restore(&s.ibp)
}

// RestoreDirty overwrites only regions marked dirty since the unit last
// matched a restored state — the cpu layer calls it when its snapshot-hash
// sync check proves the clean regions already equal s. Bit-identical to
// Restore under that precondition.
func (u *Unit) RestoreDirty(s *UnitState) {
	u.CBP.RestoreDirty(&s.cbp)
	u.BTB.RestoreDirty(&s.btb)
	u.IBP.RestoreDirty(&s.ibp)
}

// Hash folds the saved Unit into h.
func (s *UnitState) Hash(h uint64) uint64 {
	h = s.cbp.Hash(h)
	h = s.btb.Hash(h)
	return s.ibp.Hash(h)
}

// mix is one FNV-1a style step over a 64-bit word.
func mix(h, w uint64) uint64 {
	return (h ^ w) * 0x100000001b3
}
