package bpu

import (
	"fmt"

	"pathfinder/internal/pht"
	"pathfinder/internal/wire"
)

// Wire codec for the saved predictor states, used by the cpu.Snapshot
// binary encoding. Sparse structures (BTB, IBP) encode only live entries,
// mirroring their Hash folds; the CBP encodes its tables in order plus the
// decay clock.

// EncodeWire appends the saved CBP to w.
func (s *CBPState) EncodeWire(w *wire.Writer) {
	w.String(s.arch)
	s.base.EncodeWire(w)
	w.U32(uint32(len(s.tables)))
	for i := range s.tables {
		s.tables[i].EncodeWire(w)
	}
	w.U64(s.updates)
}

// DecodeWire reads a saved CBP from r, replacing s.
func (s *CBPState) DecodeWire(r *wire.Reader) {
	s.arch = r.String()
	s.base.DecodeWire(r)
	n := r.Len(64)
	if len(s.tables) != n {
		s.tables = make([]pht.TaggedState, n)
	}
	for i := range s.tables {
		s.tables[i].DecodeWire(r)
	}
	s.updates = r.U64()
}

// EncodeWire appends the saved BTB to w: total geometry, then the live
// entries as (index, key, target).
func (s *BTBState) EncodeWire(w *wire.Writer) {
	w.U32(uint32(len(s.entries)))
	live := 0
	for i := range s.entries {
		if s.entries[i].key != 0 {
			live++
		}
	}
	w.U32(uint32(live))
	for i := range s.entries {
		if s.entries[i].key == 0 {
			continue
		}
		w.U32(uint32(i))
		w.U64(s.entries[i].key)
		w.U64(s.entries[i].target)
	}
}

// DecodeWire reads a saved BTB from r, replacing s.
func (s *BTBState) DecodeWire(r *wire.Reader) {
	n := r.Len(1 << 24)
	if cap(s.entries) < n {
		s.entries = make([]btbEntry, n)
	}
	s.entries = s.entries[:n]
	clear(s.entries)
	live := r.Len(n)
	for k := 0; k < live; k++ {
		i := int(r.U32())
		if r.Err() != nil {
			return
		}
		if i >= n {
			r.Fail(fmt.Errorf("bpu: wire BTB entry %d out of geometry %d", i, n))
			return
		}
		s.entries[i].key = r.U64()
		s.entries[i].target = r.U64()
	}
}

// EncodeWire appends the saved IBP to w as its key-sorted pairs.
func (s *IBPState) EncodeWire(w *wire.Writer) {
	w.U32(uint32(len(s.keys)))
	for i := range s.keys {
		w.U64(s.keys[i])
		w.U64(s.targets[i])
	}
}

// DecodeWire reads a saved IBP from r, replacing s.
func (s *IBPState) DecodeWire(r *wire.Reader) {
	n := r.Len(1 << 24)
	s.keys = s.keys[:0]
	s.targets = s.targets[:0]
	for i := 0; i < n; i++ {
		s.keys = append(s.keys, r.U64())
		s.targets = append(s.targets, r.U64())
	}
}

// EncodeWire appends the saved Unit to w.
func (s *UnitState) EncodeWire(w *wire.Writer) {
	s.cbp.EncodeWire(w)
	s.btb.EncodeWire(w)
	s.ibp.EncodeWire(w)
}

// DecodeWire reads a saved Unit from r, replacing s.
func (s *UnitState) DecodeWire(r *wire.Reader) {
	s.cbp.DecodeWire(r)
	s.btb.DecodeWire(r)
	s.ibp.DecodeWire(r)
}
