package bpu

import (
	"math/rand"
	"testing"

	"pathfinder/internal/phr"
	"pathfinder/internal/pht"
)

func TestConfigsTable1(t *testing.T) {
	cfgs := Configs()
	if len(cfgs) != 3 {
		t.Fatalf("want 3 machines, got %d", len(cfgs))
	}
	if RaptorLake.PHRSize != 194 || AlderLake.PHRSize != 194 || Skylake.PHRSize != 93 {
		t.Fatal("PHR sizes disagree with §2.2.1")
	}
	// Observation 1: Raptor Lake's PHR structure is identical to Alder Lake.
	if RaptorLake.PHRSize != AlderLake.PHRSize {
		t.Fatal("Observation 1 violated")
	}
	for i := range RaptorLake.TableHists {
		if RaptorLake.TableHists[i] != AlderLake.TableHists[i] {
			t.Fatal("Observation 1 violated (table hists)")
		}
	}
}

func TestCBPLearnsBias(t *testing.T) {
	c := NewCBP(AlderLake)
	h := phr.New(194)
	pc := uint64(0x4cc0)
	// An always-taken branch must converge to perfect prediction quickly.
	mis := 0
	for i := 0; i < 100; i++ {
		p := c.Predict(pc, h)
		if !p.Taken {
			mis++
		}
		c.Update(pc, h, true, p)
	}
	if mis > 8 {
		t.Fatalf("always-taken branch mispredicted %d/100 times", mis)
	}
}

func TestCBPLearnsHistoryCorrelation(t *testing.T) {
	// A branch whose outcome equals a bit encoded in the PHR must become
	// predictable through the tagged tables even though its overall bias is
	// 50/50 — the mechanism behind the Read PHR primitive.
	c := NewCBP(AlderLake)
	pc := uint64(0x5c80)
	rng := rand.New(rand.NewSource(42))
	hTaken := phr.New(194)
	hNot := phr.New(194)
	hTaken.SetDoublet(193, 2) // two distinct histories
	warm, meas := 64, 200
	mis := 0
	for i := 0; i < warm+meas; i++ {
		taken := rng.Intn(2) == 0
		h := hNot
		if taken {
			h = hTaken
		}
		p := c.Predict(pc, h)
		if i >= warm && p.Taken != taken {
			mis++
		}
		c.Update(pc, h, taken, p)
	}
	if mis > meas/20 {
		t.Fatalf("correlated branch mispredicted %d/%d after warmup", mis, meas)
	}
}

func TestCBPCannotLearnIdenticalHistories(t *testing.T) {
	// If both outcomes present the same (PC, PHR), prediction accuracy must
	// stay near 50% — the "X == P0" signal of Read PHR.
	c := NewCBP(AlderLake)
	pc := uint64(0x5c80)
	h := phr.New(194)
	h.SetDoublet(193, 2)
	rng := rand.New(rand.NewSource(43))
	warm, meas := 64, 400
	mis := 0
	for i := 0; i < warm+meas; i++ {
		taken := rng.Intn(2) == 0
		p := c.Predict(pc, h)
		if i >= warm && p.Taken != taken {
			mis++
		}
		c.Update(pc, h, taken, p)
	}
	rate := float64(mis) / float64(meas)
	if rate < 0.30 || rate > 0.70 {
		t.Fatalf("indistinguishable histories predicted with rate %.2f, want ~0.5", rate)
	}
}

func TestProviderIsLongestHit(t *testing.T) {
	c := NewCBP(AlderLake)
	h := phr.New(194)
	h.SetDoublet(50, 1) // visible to tables 2 (66) and 3 (194), not table 1 (34)
	pc := uint64(0x77c0)
	c.Tables[0].Allocate(pc, h, false)
	c.Tables[2].Allocate(pc, h, true)
	p := c.Predict(pc, h)
	if p.Provider != 2 || !p.Taken {
		t.Fatalf("provider %d taken %v, want table 2 taken", p.Provider, p.Taken)
	}
	if p.AltTaken {
		t.Fatal("alt prediction should come from table 0 (not taken)")
	}
}

func TestMispredictAllocatesLongerTable(t *testing.T) {
	c := NewCBP(AlderLake)
	h := phr.New(194)
	pc := uint64(0x3f40)
	// Base predicts not-taken initially; a taken outcome mispredicts and
	// must allocate in table 1 (shortest tagged table).
	p := c.Predict(pc, h)
	if p.Provider != -1 || p.Taken {
		t.Fatalf("unexpected initial prediction %+v", p)
	}
	c.Update(pc, h, true, p)
	if _, hit := c.Tables[0].Lookup(pc, h); !hit {
		t.Fatal("no allocation in table 1 after base misprediction")
	}
	if _, hit := c.Tables[1].Lookup(pc, h); hit {
		t.Fatal("allocation skipped a level")
	}
	// Next misprediction with table-1 provider allocates table 2.
	e, _ := c.Tables[0].Lookup(pc, h)
	e.Ctr = pht.WeakFor(false)
	p = c.Predict(pc, h)
	c.Update(pc, h, true, p)
	if _, hit := c.Tables[1].Lookup(pc, h); !hit {
		t.Fatal("no allocation in table 2")
	}
}

func TestFlushClearsEverything(t *testing.T) {
	c := NewCBP(RaptorLake)
	h := phr.New(194)
	pc := uint64(0x9c40)
	for i := 0; i < 10; i++ {
		p := c.Predict(pc, h)
		c.Update(pc, h, i%2 == 0, p)
	}
	c.Flush()
	for i, tt := range c.Tables {
		if tt.Occupancy() != 0 {
			t.Fatalf("table %d not flushed", i)
		}
	}
	if c.Base.Counter(pc) != pht.WeakFor(false) {
		t.Fatal("base not reset")
	}
}

func TestBTB(t *testing.T) {
	b := NewBTB()
	b.Insert(0x100, 0x4000)
	if tgt, ok := b.Lookup(0x100); !ok || tgt != 0x4000 {
		t.Fatal("BTB lookup")
	}
	if _, ok := b.Lookup(0x101); ok {
		t.Fatal("BTB false hit")
	}
	b.Flush()
	if b.Occupancy() != 0 {
		t.Fatal("BTB flush")
	}
}

func TestIBP(t *testing.T) {
	p := NewIBP()
	h := phr.New(194)
	p.Insert(0x200, h, 0x8000)
	if tgt, ok := p.Lookup(0x200, h); !ok || tgt != 0x8000 {
		t.Fatal("IBP lookup")
	}
	h2 := phr.New(194)
	h2.SetDoublet(0, 1)
	if _, ok := p.Lookup(0x200, h2); ok {
		t.Fatal("IBP must key on history")
	}
	p.Flush()
	if p.Occupancy() != 0 {
		t.Fatal("IBP flush")
	}
}

func TestIBPBLeavesCBPIntact(t *testing.T) {
	// §7.4 / Table 2: IBPB flushes BTB and IBP but not the PHTs.
	u := NewUnit(AlderLake)
	h := phr.New(194)
	pc := uint64(0xaa80)
	p := u.CBP.Predict(pc, h)
	u.CBP.Update(pc, h, !p.Taken, p) // force a tagged allocation
	u.BTB.Insert(pc, 0x40)
	u.IBP.Insert(pc, h, 0x80)
	u.IBPB()
	if u.BTB.Occupancy() != 0 || u.IBP.Occupancy() != 0 {
		t.Fatal("IBPB must flush BTB and IBP")
	}
	if u.CBP.Tables[0].Occupancy() == 0 {
		t.Fatal("IBPB must NOT flush the CBP")
	}
}

func BenchmarkCBPPredictUpdate(b *testing.B) {
	c := NewCBP(AlderLake)
	h := phr.New(194)
	for i := 0; i < b.N; i++ {
		pc := uint64(i%64) << 6
		p := c.Predict(pc, h)
		c.Update(pc, h, i&1 == 0, p)
		h.Update(uint16(i))
	}
}
