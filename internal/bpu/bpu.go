// Package bpu assembles the branch prediction unit of the modeled Intel
// CPUs: the conditional branch predictor (CBP — base predictor plus tagged
// pattern history tables driven by the path history register), a branch
// target buffer (BTB) and an indirect branch predictor (IBP).
//
// The CBP follows the TAGE discipline the paper attributes to Intel
// hardware: the prediction comes from the hit table with the longest
// history ("provider"); on a misprediction a fresh weak entry is allocated
// in a table with a longer history. Only conditional branches interact with
// the CBP; every taken branch (conditional or not) updates the PHR, which
// is owned by each logical core (hart) and passed in by the caller.
package bpu

import (
	"fmt"
	"strings"

	"pathfinder/internal/phr"
	"pathfinder/internal/pht"
)

// Config describes one target microarchitecture (Table 1 of the paper).
type Config struct {
	Name       string // microarchitecture name
	Model      string // the paper's example part
	PHRSize    int    // taken-branch history depth in doublets
	TableHists []int  // PHR doublets folded by each tagged table, ascending
}

// The three machines of Table 1. Observation 1: Raptor Lake's PHR structure
// is identical to Alder Lake's. Skylake keeps the same three-table layout
// with its shorter 93-doublet PHR capping the longest history.
var (
	RaptorLake = Config{Name: "Raptor Lake", Model: "Core i9-13900KS", PHRSize: 194, TableHists: []int{34, 66, 194}}
	AlderLake  = Config{Name: "Alder Lake", Model: "Core i9-12900", PHRSize: 194, TableHists: []int{34, 66, 194}}
	Skylake    = Config{Name: "Skylake", Model: "Core i7-6770HQ", PHRSize: 93, TableHists: []int{34, 66, 93}}
)

// Configs lists the modeled machines in Table 1 order.
func Configs() []Config { return []Config{RaptorLake, AlderLake, Skylake} }

// Prediction is the CBP output for one conditional branch, retained by the
// caller and passed back to Update at resolution.
type Prediction struct {
	Taken    bool
	Provider int  // index into Tables, or -1 for the base predictor
	AltTaken bool // prediction of the next-longest component
}

// Predictor is the conditional-branch-predictor surface the CPU model and
// the experiment harness drive. Two implementations exist: the packed,
// memoized CBP in this package (the production model) and the deliberately
// naive oracle in internal/refmodel. internal/trace replays identical
// branch streams through both and reports the first divergence, so the fast
// model can be refactored without silently drifting from the paper's §2.2
// update discipline.
type Predictor interface {
	// Config returns the modeled microarchitecture.
	Config() Config
	// Predict returns the direction prediction for a conditional branch.
	Predict(pc uint64, h phr.History) Prediction
	// Update resolves a conditional branch with its actual outcome.
	Update(pc uint64, h phr.History, taken bool, p Prediction)
	// Flush clears all predictor state.
	Flush()
	// DumpState renders the full predictor state for divergence reports.
	DumpState() string
}

// UsefulResetPeriod is how many conditional-branch updates pass between
// global usefulness-counter decays — TAGE's periodic reset, scaled to the
// model's table sizes. Without it long-running victims pin every way of hot
// sets as "useful" and fresh correlations can never allocate.
const UsefulResetPeriod = 4096

// CBP is the conditional branch predictor of Figure 3.
type CBP struct {
	cfg     Config
	Base    *pht.BaseTable
	Tables  []*pht.TaggedTable
	updates uint64
}

// NewCBP builds an empty CBP for the given microarchitecture.
func NewCBP(cfg Config) *CBP {
	c := &CBP{cfg: cfg, Base: pht.NewBase()}
	for _, h := range cfg.TableHists {
		c.Tables = append(c.Tables, pht.NewTagged(h))
	}
	return c
}

// Config returns the microarchitecture this CBP models.
func (c *CBP) Config() Config { return c.cfg }

// Predict returns the direction prediction for a conditional branch at pc
// under path history h.
func (c *CBP) Predict(pc uint64, h phr.History) Prediction {
	base := c.Base.Predict(pc)
	p := Prediction{Provider: -1, Taken: base, AltTaken: base}
	for i, t := range c.Tables { // ascending history; later hits override
		if e, hit := t.Lookup(pc, h); hit {
			p.AltTaken = p.Taken
			p.Taken = e.Ctr.Taken()
			p.Provider = i
		}
	}
	return p
}

// PredictReg is Predict specialized to the concrete *phr.Reg, the type every
// Hart actually owns. The specialization exists purely so the fold and memo
// probes devirtualize on the simulator hot path; it must stay line-for-line
// equivalent to Predict (the engine parity tests pin this).
func (c *CBP) PredictReg(pc uint64, r *phr.Reg) Prediction {
	base := c.Base.Predict(pc)
	p := Prediction{Provider: -1, Taken: base, AltTaken: base}
	for i, t := range c.Tables { // ascending history; later hits override
		if e, hit := t.LookupReg(pc, r); hit {
			p.AltTaken = p.Taken
			p.Taken = e.Ctr.Taken()
			p.Provider = i
		}
	}
	return p
}

// Update resolves a conditional branch: trains the provider component and,
// on a misprediction, allocates a weak entry in a longer-history table
// (the shortest one with room; full sets age their usefulness counters).
func (c *CBP) Update(pc uint64, h phr.History, taken bool, p Prediction) {
	c.updates++
	if c.updates%UsefulResetPeriod == 0 {
		for _, t := range c.Tables {
			t.DecayUseful()
		}
	}
	if p.Provider < 0 {
		c.Base.Update(pc, taken)
	} else {
		t := c.Tables[p.Provider]
		if e, hit := t.Lookup(pc, h); hit {
			e.Ctr = e.Ctr.Update(taken)
			if p.Taken != p.AltTaken {
				if p.Taken == taken {
					if e.Useful < pht.UsefulMax {
						e.Useful++
					}
				} else if e.Useful > 0 {
					e.Useful--
				}
			}
		}
	}
	if p.Taken != taken {
		for i := p.Provider + 1; i < len(c.Tables); i++ {
			if c.Tables[i].Allocate(pc, h, taken) {
				break
			}
		}
	}
}

// UpdateReg is Update specialized to the concrete *phr.Reg; see PredictReg.
func (c *CBP) UpdateReg(pc uint64, r *phr.Reg, taken bool, p Prediction) {
	c.updates++
	if c.updates%UsefulResetPeriod == 0 {
		for _, t := range c.Tables {
			t.DecayUseful()
		}
	}
	if p.Provider < 0 {
		c.Base.Update(pc, taken)
	} else {
		t := c.Tables[p.Provider]
		if e, hit := t.LookupReg(pc, r); hit {
			e.Ctr = e.Ctr.Update(taken)
			if p.Taken != p.AltTaken {
				if p.Taken == taken {
					if e.Useful < pht.UsefulMax {
						e.Useful++
					}
				} else if e.Useful > 0 {
					e.Useful--
				}
			}
		}
	}
	if p.Taken != taken {
		for i := p.Provider + 1; i < len(c.Tables); i++ {
			if c.Tables[i].AllocateReg(pc, r, taken) {
				break
			}
		}
	}
}

// Flush clears every CBP structure. On hardware this has no architectural
// instruction and costs on the order of 100k branches (§10.2); the
// mitigation experiments model that cost separately.
func (c *CBP) Flush() {
	c.Base.Reset()
	for _, t := range c.Tables {
		t.Reset()
	}
}

// Reset returns the CBP to its power-on state: Flush plus a rewind of the
// periodic usefulness-decay phase. Flush alone models the §10.2 mitigation,
// which cannot touch the decay clock; Reset exists for machine recycling,
// where a reused predictor must be bit-identical to a newly built one.
func (c *CBP) Reset() {
	c.Flush()
	c.updates = 0
}

// DumpState renders every trained base counter and every valid tagged entry,
// the payload of a differential-divergence report (internal/trace).
func (c *CBP) DumpState() string {
	var b strings.Builder
	fmt.Fprintf(&b, "CBP %s (updates=%d)\n", c.cfg.Name, c.updates)
	b.WriteString(c.Base.Dump())
	for i, t := range c.Tables {
		fmt.Fprintf(&b, "table %d (hist %d):\n", i, t.HistLen)
		b.WriteString(t.Dump())
	}
	return b.String()
}

var _ Predictor = (*CBP)(nil)

// btbEntry is a BTB slot, packed to 16 bytes: key is the branch PC plus
// one, so zero means invalid and a lookup is a single comparison.
type btbEntry struct {
	key    uint64 // pc + 1; 0 = invalid
	target uint64
}

// BTB is a direct-mapped branch target buffer. Its only role in this model
// is to exist as the structure IBPB actually flushes, demonstrating that
// Intel's indirect-branch defenses leave the CBP and PHR untouched
// (Table 2, §7.4).
type BTB struct {
	entries []btbEntry

	// dirty has one bit per 64-entry bank (4096 entries → 64 banks → one
	// word), raised when Insert writes a slot or Flush clears the table;
	// RestoreDirty copies only marked banks.
	dirty uint64
}

// NewBTB returns an empty 4096-entry BTB.
func NewBTB() *BTB { return &BTB{entries: make([]btbEntry, 4096)} }

// slot masks rather than divides; the entry count is a power of two.
func (b *BTB) slot(pc uint64) *btbEntry { return &b.entries[pc&uint64(len(b.entries)-1)] }

// Insert records a taken branch target. Hot loops re-insert the same
// mapping on every iteration, so an already-current slot is left untouched
// (and, deliberately, not marked dirty).
func (b *BTB) Insert(pc, target uint64) {
	e := b.slot(pc)
	if e.key != pc+1 || e.target != target {
		bank := (pc & uint64(len(b.entries)-1)) * 64 / uint64(len(b.entries))
		b.dirty |= 1 << bank
		*e = btbEntry{key: pc + 1, target: target}
	}
}

// Lookup predicts the target for pc.
func (b *BTB) Lookup(pc uint64) (uint64, bool) {
	e := b.slot(pc)
	if e.key == pc+1 {
		return e.target, true
	}
	return 0, false
}

// Flush invalidates the BTB (the effect of IBPB).
func (b *BTB) Flush() {
	b.dirty = ^uint64(0)
	for i := range b.entries {
		b.entries[i] = btbEntry{}
	}
}

// Occupancy counts valid BTB entries.
func (b *BTB) Occupancy() int {
	n := 0
	for _, e := range b.entries {
		if e.key != 0 {
			n++
		}
	}
	return n
}

// IBP is the indirect branch predictor: targets keyed by PC and folded path
// history. Like the BTB it exists so IBPB/IBRS have their documented effect
// — and *only* that effect.
type IBP struct {
	targets map[uint64]uint64

	// dirty is coarse (the whole map): the IBP is tiny or empty on every
	// measured path, so per-key tracking would cost more than it saves.
	dirty bool
}

// NewIBP returns an empty indirect predictor.
func NewIBP() *IBP { return &IBP{targets: make(map[uint64]uint64)} }

func ibpKey(pc uint64, h phr.History) uint64 {
	return pc<<16 ^ uint64(h.Fold(h.Size(), 16))
}

// Insert records an indirect branch target for (pc, history).
func (p *IBP) Insert(pc uint64, h phr.History, target uint64) {
	p.dirty = true
	p.targets[ibpKey(pc, h)] = target
}

// Lookup predicts an indirect target.
func (p *IBP) Lookup(pc uint64, h phr.History) (uint64, bool) {
	t, ok := p.targets[ibpKey(pc, h)]
	return t, ok
}

// Flush clears the IBP (the effect of IBPB; IBRS restricts its use across
// privilege transitions, modeled as a flush at transition time). The map is
// cleared in place so the per-trial Recycle path stays allocation-free.
func (p *IBP) Flush() {
	p.dirty = true
	clear(p.targets)
}

// Occupancy counts recorded indirect targets.
func (p *IBP) Occupancy() int { return len(p.targets) }

// Unit bundles the shared predictor structures of one physical core. The
// PHR is deliberately absent: each SMT hart owns a private PHR (§7.3),
// while the Unit is shared between co-resident harts.
type Unit struct {
	CBP *CBP
	BTB *BTB
	IBP *IBP
}

// NewUnit builds the shared predictor state for one physical core.
func NewUnit(cfg Config) *Unit {
	return &Unit{CBP: NewCBP(cfg), BTB: NewBTB(), IBP: NewIBP()}
}

// Reset returns every predictor structure to power-on state (machine
// recycling; not a modeled hardware operation).
func (u *Unit) Reset() {
	u.CBP.Reset()
	u.BTB.Flush()
	u.IBP.Flush()
}

// IBPB models Intel's Indirect Branch Predictor Barrier: it flushes the
// BTB and IBP but leaves the CBP (PHTs) — and each hart's PHR — intact,
// which is exactly why it does not mitigate the Pathfinder attacks
// (Table 2).
func (u *Unit) IBPB() {
	u.BTB.Flush()
	u.IBP.Flush()
}
