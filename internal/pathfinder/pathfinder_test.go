package pathfinder

import (
	"testing"

	"pathfinder/internal/cpu"
	"pathfinder/internal/isa"
	"pathfinder/internal/phr"
)

func mustAssemble(t *testing.T, build func(a *isa.Assembler)) *isa.Program {
	t.Helper()
	a := isa.NewAssembler()
	build(a)
	p, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// runTraced executes prog from entry on a fresh machine and returns the
// final PHR, the taken-branch trace, and a virtual unbounded doublet
// history (index 0 most recent) for Ext construction.
func runTraced(t *testing.T, prog *isa.Program, entry string, setup func(m *cpu.Machine)) (*phr.Reg, []uint8) {
	t.Helper()
	m := cpu.New(cpu.Options{})
	var fps []uint16
	m.TraceTaken = func(pc, target uint64) { fps = append(fps, phr.Footprint(pc, target)) }
	if setup != nil {
		setup(m)
	}
	if err := m.Run(prog, entry); err != nil {
		t.Fatal(err)
	}
	// Virtual register: footprints applied oldest-first over an unbounded
	// doublet array.
	virt := make([]uint8, len(fps)+8)
	for _, f := range fps {
		copy(virt[1:], virt)
		virt[0] = 0
		for i := 0; i < 8; i++ {
			virt[i] ^= uint8(f>>(2*i)) & 3
		}
	}
	return m.Hart(0).PHR.Clone(), virt
}

func extFrom(virt []uint8, window int) []phr.Doublet {
	if len(virt) <= window {
		return nil
	}
	out := make([]phr.Doublet, len(virt)-window)
	copy(out, virt[window:])
	return out
}

func TestSearchSimpleLoop(t *testing.T) {
	const trips = 5
	p := mustAssemble(t, func(a *isa.Assembler) {
		a.Org(0x2000)
		a.Label("entry")
		a.MovI(isa.R1, 0)
		a.MovI(isa.R2, trips)
		a.Label("loop")
		a.AddI(isa.R1, isa.R1, 1)
		a.Label("back")
		a.Br(isa.LT, isa.R1, isa.R2, "loop")
		a.Label("end")
		a.Halt()
	})
	observed, _ := runTraced(t, p, "entry", nil)
	cfg, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	paths, err := cfg.Search(Spec{
		Observed: observed,
		Entry:    p.MustSymbol("entry"),
		Final:    p.MustSymbol("end"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 || !paths[0].Complete {
		t.Fatalf("want 1 complete path, got %d (%v)", len(paths), paths)
	}
	back := p.MustSymbol("back")
	if got := paths[0].TakenCount(back); got != trips-1 {
		t.Fatalf("loop back-edge taken %d times, want %d", got, trips-1)
	}
	if got := paths[0].VisitCount(back); got != trips {
		t.Fatalf("loop branch executed %d times, want %d", got, trips)
	}
	// The final execution is the not-taken exit.
	out := paths[0].Outcomes()
	if out[len(out)-1].Taken {
		t.Fatal("last branch instance should be not-taken (loop exit)")
	}
}

func TestSearchNestedLoops(t *testing.T) {
	p := mustAssemble(t, func(a *isa.Assembler) {
		a.Org(0x3000)
		a.Label("entry")
		a.MovI(isa.R1, 0) // i
		a.Label("outer")
		a.MovI(isa.R2, 0) // j
		a.Label("inner")
		a.AddI(isa.R2, isa.R2, 1)
		a.MovI(isa.R4, 3)
		a.Label("innerbr")
		a.Br(isa.LT, isa.R2, isa.R4, "inner")
		a.AddI(isa.R1, isa.R1, 1)
		a.MovI(isa.R4, 4)
		a.Label("outerbr")
		a.Br(isa.LT, isa.R1, isa.R4, "outer")
		a.Label("end")
		a.Halt()
	})
	observed, _ := runTraced(t, p, "entry", nil)
	cfg, _ := Build(p)
	paths, err := cfg.Search(Spec{
		Observed: observed,
		Entry:    p.MustSymbol("entry"),
		Final:    p.MustSymbol("end"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 || !paths[0].Complete {
		t.Fatalf("want 1 complete path, got %d", len(paths))
	}
	// 4 outer iterations, each with 3 inner iterations (2 back-edges).
	if got := paths[0].TakenCount(p.MustSymbol("innerbr")); got != 4*2 {
		t.Fatalf("inner back-edges %d, want 8", got)
	}
	if got := paths[0].TakenCount(p.MustSymbol("outerbr")); got != 3 {
		t.Fatalf("outer back-edges %d, want 3", got)
	}
}

func TestSearchRecoversDataDependentBranches(t *testing.T) {
	// An if/else ladder reading secret memory: the recovered path must
	// reveal each secret bit — the core leak of the paper.
	build := func() *isa.Program {
		return mustAssemble(t, func(a *isa.Assembler) {
			a.Org(0x4000)
			a.Label("entry")
			a.MovI(isa.R5, 0x9000) // secret array
			a.MovI(isa.R1, 0)      // i
			a.MovI(isa.R2, 8)
			a.MovI(isa.R6, 1)
			a.Label("loop")
			a.Add(isa.R3, isa.R5, isa.R1)
			a.LdB(isa.R4, isa.R3, 0)
			a.Label("bit")
			a.Br(isa.EQ, isa.R4, isa.R6, "one")
			a.Nop() // "zero" side
			a.Jmp("join")
			a.Label("one")
			a.Nop()
			a.Label("join")
			a.AddI(isa.R1, isa.R1, 1)
			a.Label("back")
			a.Br(isa.LT, isa.R1, isa.R2, "loop")
			a.Label("end")
			a.Halt()
		})
	}
	secret := []byte{1, 0, 1, 1, 0, 0, 1, 0}
	p := build()
	observed, _ := runTraced(t, p, "entry", func(m *cpu.Machine) {
		m.Mem.WriteBytes(0x9000, secret)
	})
	cfg, _ := Build(p)
	paths, err := cfg.Search(Spec{
		Observed: observed,
		Entry:    p.MustSymbol("entry"),
		Final:    p.MustSymbol("end"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 || !paths[0].Complete {
		t.Fatalf("want 1 complete path, got %d", len(paths))
	}
	bit := p.MustSymbol("bit")
	var got []byte
	for _, s := range paths[0].Outcomes() {
		if s.Addr == bit {
			if s.Taken {
				got = append(got, 1)
			} else {
				got = append(got, 0)
			}
		}
	}
	if len(got) != len(secret) {
		t.Fatalf("recovered %d bits, want %d", len(got), len(secret))
	}
	for i := range secret {
		if got[i] != secret[i] {
			t.Fatalf("bit %d: got %d want %d (full: %v)", i, got[i], secret[i], got)
		}
	}
}

func TestSearchThroughCallReturn(t *testing.T) {
	p := mustAssemble(t, func(a *isa.Assembler) {
		a.Org(0x5000)
		a.Label("entry")
		a.MovI(isa.R1, 2)
		a.Call("helper")
		a.Call("helper")
		a.Label("end")
		a.Halt()
		a.Org(0x6100)
		a.Label("helper")
		a.AddI(isa.R1, isa.R1, 1)
		a.Ret()
	})
	observed, _ := runTraced(t, p, "entry", nil)
	cfg, _ := Build(p)
	paths, err := cfg.Search(Spec{
		Observed: observed,
		Entry:    p.MustSymbol("entry"),
		Final:    p.MustSymbol("end"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 || !paths[0].Complete {
		t.Fatalf("want 1 complete path, got %d", len(paths))
	}
	calls, rets := 0, 0
	for _, s := range paths[0].Steps {
		switch s.Kind {
		case EdgeCall:
			calls++
		case EdgeReturn:
			rets++
		}
	}
	if calls != 2 || rets != 2 {
		t.Fatalf("calls=%d rets=%d, want 2/2", calls, rets)
	}
}

func TestSearchWindowTruncationAndExt(t *testing.T) {
	// A loop with more taken branches than the PHR window: without Ext the
	// search reports an incomplete path; with Ext (here from ground truth,
	// in the real attack from Extended_Read_PHR) it completes and recovers
	// the exact trip count — the >194-iteration limitation of §6 lifted.
	const trips = 250
	p := mustAssemble(t, func(a *isa.Assembler) {
		a.Org(0x7000)
		a.Label("entry")
		a.MovI(isa.R1, 0)
		a.MovI(isa.R2, trips)
		a.Label("loop")
		a.AddI(isa.R1, isa.R1, 1)
		a.Label("back")
		a.Br(isa.LT, isa.R1, isa.R2, "loop")
		a.Label("end")
		a.Halt()
	})
	observed, virt := runTraced(t, p, "entry", nil)
	cfg, _ := Build(p)

	noExt, err := cfg.Search(Spec{
		Observed: observed,
		Entry:    p.MustSymbol("entry"),
		Final:    p.MustSymbol("end"),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, pp := range noExt {
		if pp.Complete {
			t.Fatal("path cannot be complete without extended history")
		}
	}

	withExt, err := cfg.Search(Spec{
		Observed: observed,
		Ext:      extFrom(virt, observed.Size()),
		Entry:    p.MustSymbol("entry"),
		Final:    p.MustSymbol("end"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(withExt) != 1 || !withExt[0].Complete {
		t.Fatalf("want 1 complete path with ext, got %d", len(withExt))
	}
	if got := withExt[0].TakenCount(p.MustSymbol("back")); got != trips-1 {
		t.Fatalf("trip count %d, want %d", got, trips-1)
	}
}

func TestBlockSequence(t *testing.T) {
	p := mustAssemble(t, func(a *isa.Assembler) {
		a.Org(0x8000)
		a.Label("entry")
		a.MovI(isa.R1, 0)
		a.MovI(isa.R2, 3)
		a.Label("loop")
		a.AddI(isa.R1, isa.R1, 1)
		a.Br(isa.LT, isa.R1, isa.R2, "loop")
		a.Label("end")
		a.Halt()
	})
	observed, _ := runTraced(t, p, "entry", nil)
	cfg, _ := Build(p)
	paths, err := cfg.Search(Spec{
		Observed: observed,
		Entry:    p.MustSymbol("entry"),
		Final:    p.MustSymbol("end"),
	})
	if err != nil {
		t.Fatal(err)
	}
	seq := paths[0].BlockSequence(cfg, p.MustSymbol("entry"), p.MustSymbol("end"))
	if len(seq) != 3 {
		t.Fatalf("block sequence %v, want entry/loop/end", seq)
	}
	if cfg.Dump() == "" {
		t.Fatal("empty CFG dump")
	}
}

func TestCFGBlocks(t *testing.T) {
	p := mustAssemble(t, func(a *isa.Assembler) {
		a.Label("entry")
		a.MovI(isa.R1, 1)
		a.Br(isa.EQ, isa.R1, isa.R1, "tgt")
		a.Nop()
		a.Label("tgt")
		a.Halt()
	})
	cfg, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Blocks) != 3 {
		t.Fatalf("want 3 blocks, got %d:\n%s", len(cfg.Blocks), cfg.Dump())
	}
	b, ok := cfg.BlockAt(p.MustSymbol("entry") + 1)
	if !ok || b.Start != p.MustSymbol("entry") {
		t.Fatal("BlockAt mid-block failed")
	}
}

func TestSearchRequiresObserved(t *testing.T) {
	p := mustAssemble(t, func(a *isa.Assembler) {
		a.Label("e")
		a.Halt()
	})
	cfg, _ := Build(p)
	if _, err := cfg.Search(Spec{}); err == nil {
		t.Fatal("nil Observed accepted")
	}
}

func TestEdgesToCatalog(t *testing.T) {
	p := mustAssemble(t, func(a *isa.Assembler) {
		a.Label("entry")
		a.Jmp("x")
		a.Label("mid")
		a.Br(isa.EQ, isa.R1, isa.R2, "x")
		a.Label("x")
		a.Halt()
	})
	cfg, _ := Build(p)
	edges := cfg.EdgesTo(p.MustSymbol("x"))
	if len(edges) != 2 {
		t.Fatalf("want 2 edges to x, got %d", len(edges))
	}
}
