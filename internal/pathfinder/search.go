package pathfinder

import (
	"fmt"
	"strings"

	"pathfinder/internal/isa"
	"pathfinder/internal/phr"
)

// Step is one recovered branch event, in execution order.
type Step struct {
	Addr        uint64
	Target      uint64 // meaningful when Taken
	Taken       bool
	Conditional bool
	Kind        EdgeKind // for taken steps
}

func (s Step) String() string {
	dir := "T"
	if !s.Taken {
		dir = "N"
	}
	if s.Conditional {
		return fmt.Sprintf("%#x:%s", s.Addr, dir)
	}
	return fmt.Sprintf("%#x:%s->%#x", s.Addr, s.Kind, s.Target)
}

// Path is one execution history consistent with the observed PHR.
type Path struct {
	Steps []Step
	// Complete is true when the path reaches the entry with the whole known
	// history window accounted for (an all-zero remainder, matching the
	// cleared-PHR start of the capture protocol).
	Complete bool
}

// Outcomes returns the ordered conditional-branch outcomes of the path —
// the per-instance taken/not-taken stream the paper highlights as
// unavailable to PHT-only attacks.
func (p Path) Outcomes() []Step {
	var out []Step
	for _, s := range p.Steps {
		if s.Conditional {
			out = append(out, s)
		}
	}
	return out
}

// VisitCount returns how many times the branch at addr executed (any
// direction) along the path.
func (p Path) VisitCount(addr uint64) int {
	n := 0
	for _, s := range p.Steps {
		if s.Addr == addr {
			n++
		}
	}
	return n
}

// TakenCount returns how many times the branch at addr was taken.
func (p Path) TakenCount(addr uint64) int {
	n := 0
	for _, s := range p.Steps {
		if s.Addr == addr && s.Taken {
			n++
		}
	}
	return n
}

// BlockSequence maps the path to the basic blocks visited between entry and
// final, collapsing consecutive duplicates — the Figure 6 view. Use
// Path.VisitCount / TakenCount for loop trip counts.
func (p Path) BlockSequence(c *CFG, entry, final uint64) []int {
	var seq []int
	push := func(addr uint64) {
		if b, ok := c.BlockAt(addr); ok {
			if len(seq) == 0 || seq[len(seq)-1] != b.ID {
				seq = append(seq, b.ID)
			}
		}
	}
	push(entry)
	for _, s := range p.Steps {
		push(s.Addr)
		if s.Taken {
			push(s.Target)
		}
	}
	push(final)
	return seq
}

func (p Path) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "path(%d steps, complete=%v):", len(p.Steps), p.Complete)
	for _, s := range p.Steps {
		b.WriteByte(' ')
		b.WriteString(s.String())
	}
	return b.String()
}

// Spec describes one path-recovery problem.
type Spec struct {
	// Observed is the PHR window recovered by Read_PHR (doublet 0 most
	// recent).
	Observed *phr.Reg
	// Ext holds doublets beyond the window from Extended_Read_PHR:
	// Ext[0] is the first doublet shifted out (history position Size),
	// Ext[1] the next older one, and so on.
	Ext []phr.Doublet
	// Entry is the victim's entry address; recovery stops there.
	Entry uint64
	// Final is the address at which execution ended: the instruction after
	// the last executed one (a return pad, HALT, or the final RET itself).
	Final uint64
	// MaxNodes caps the search (default 4M states).
	MaxNodes int
	// MaxPaths caps how many paths are returned (default 16).
	MaxPaths int
	// MaxReversals, when positive, stops each search branch after that many
	// taken-branch reversals and emits the (incomplete) suffix. The
	// Extended Read PHR driver uses this as a bounded lookahead.
	MaxReversals int
}

// Node is one deduplicated backward-search state: the working register
// after R reversals, positioned at an instruction. States reached along
// different histories merge here, turning the search tree into a DAG and
// keeping systematically ambiguous programs (repeated blocks, colliding
// footprints) tractable.
type Node struct {
	Addr uint64   // instruction address of this state
	Reg  *phr.Reg // PHR value at this execution point
	R    int      // reversals between here and the final state
	// Succs lead forward in time toward the final state, annotated with
	// the branch event between the nodes (HasStep false = plain
	// fallthrough). A node has at most two successors, and then only at a
	// conditional branch: its taken and not-taken continuations.
	Succs []DAGEdge
	// Preds lead backward in time: every observation-consistent way this
	// state could have been reached.
	Preds []PredEdge
	// Complete marks a node at the entry with a verified zero start.
	Complete bool
	// Alive marks nodes from which the backward walk can still reach a
	// truncation point or a verified entry; dead branches are search
	// hypotheses that ran out of consistent predecessors.
	Alive bool

	idx       int
	truncated bool
}

// DAGEdge is a forward edge of the search DAG.
type DAGEdge struct {
	To      *Node
	Step    Step
	HasStep bool
}

// PredEdge is a backward edge of the search DAG.
type PredEdge struct {
	From    *Node // the earlier state
	Step    Step
	HasStep bool
}

// DAG is the full result of a backward search: every observation-consistent
// execution suffix, shared-substructure-compressed. Terminals are the
// verified entry states (complete recoveries); Deepest is the best
// truncated state when no terminal exists.
type DAG struct {
	Root      *Node // the final state the search started from
	Terminals []*Node
	Deepest   *Node
}

type stateKey struct {
	idx int
	reg [7]uint64
	r   int
}

type searcher struct {
	c     *CFG
	spec  Spec
	nodes map[stateKey]*Node
	queue []*Node

	terminals []*Node // complete entry states
	deepest   *Node   // dead-end state with the most reversals
}

// Search recovers the execution paths consistent with the observed PHR.
// Most programs yield exactly one complete path (§6); crafted ambiguity,
// footprint collisions or exhausted history windows can yield several or
// incomplete ones.
func (c *CFG) Search(spec Spec) ([]Path, error) {
	if spec.MaxPaths == 0 {
		spec.MaxPaths = 16
	}
	dag, err := c.SearchDAG(spec)
	if err != nil {
		return nil, err
	}
	s := &searcher{spec: spec}
	if len(dag.Terminals) > 0 {
		return s.reconstruct(dag.Terminals, true), nil
	}
	if dag.Deepest != nil {
		return s.reconstruct([]*Node{dag.Deepest}, false), nil
	}
	return nil, nil
}

// SearchDAG runs the backward search and returns the full state DAG, for
// callers (like Extended Read PHR) that resolve ambiguity with additional
// side-channel measurements rather than path enumeration.
func (c *CFG) SearchDAG(spec Spec) (*DAG, error) {
	if spec.Observed == nil {
		return nil, fmt.Errorf("pathfinder: Spec.Observed required")
	}
	if spec.MaxNodes == 0 {
		spec.MaxNodes = 4 << 20
	}
	if spec.MaxPaths == 0 {
		spec.MaxPaths = 16
	}
	s := &searcher{c: c, spec: spec, nodes: make(map[stateKey]*Node)}
	idx, ok := c.Prog.IndexOf(spec.Final)
	if !ok {
		return nil, fmt.Errorf("pathfinder: final position %#x is not an instruction", spec.Final)
	}
	root := &Node{Addr: spec.Final, idx: idx, Reg: spec.Observed.Clone()}
	s.nodes[stateKey{idx: idx, reg: root.Reg.Words()}] = root
	s.queue = append(s.queue, root)
	for qi := 0; qi < len(s.queue); qi++ {
		if len(s.nodes) > spec.MaxNodes {
			return nil, fmt.Errorf("pathfinder: search exceeded %d states", spec.MaxNodes)
		}
		s.expand(s.queue[qi])
	}
	s.markAlive()
	return &DAG{Root: root, Terminals: s.terminals, Deepest: s.deepest}, nil
}

// known returns how many doublets of the working register are still
// trustworthy after r reversals.
func (s *searcher) known(r int) int {
	n := s.spec.Observed.Size()
	over := r - len(s.spec.Ext)
	if over > 0 {
		n -= over
	}
	return n
}

// zeroKnown reports whether the working register is consistent with the
// cleared-PHR start after r reversals. Position p of the register is
// trustworthy unless it was refilled by a reversal whose shifted-out
// doublet is genuinely unknown: refill r' lands at position size-r+r', is
// oracle-verified for r' < len(Ext), and is *provably zero under this
// path hypothesis* once its history position exceeds the last branch's
// footprint reach (positions >= FootprintDoublets). Only the window
// [size-r+len(Ext), FootprintDoublets) is unverifiable; the Extended Read
// driver keeps that window empty before accepting a path.
func (s *searcher) zeroKnown(reg *phr.Reg, r int) bool {
	n := s.spec.Observed.Size()
	lo := n - r + len(s.spec.Ext) // first untrusted refill position
	for p := 0; p < n; p++ {
		if p >= lo && p < phr.FootprintDoublets {
			continue // genuinely unknown refill; not checkable
		}
		if reg.Doublet(p) != 0 {
			return false
		}
	}
	return true
}

// link records that predecessor state (idx, reg, r) leads to node via step,
// creating and enqueueing the predecessor when first seen.
func (s *searcher) link(node *Node, idx int, reg *phr.Reg, r int, step Step, hasStep bool) {
	key := stateKey{idx: idx, reg: reg.Words(), r: r}
	pred, ok := s.nodes[key]
	if !ok {
		pred = &Node{Addr: s.c.Prog.Instrs[idx].Addr, idx: idx, Reg: reg, R: r}
		s.nodes[key] = pred
		pos := pred.Addr
		if pos == s.spec.Entry {
			// A path is complete only when every refill it used was
			// verified: refills beyond Ext are sound only where the history
			// position provably precedes the first taken branch (cleared
			// PHR), bounding the reversal count.
			verifiable := r <= len(s.spec.Ext)+s.spec.Observed.Size()-phr.FootprintDoublets
			if verifiable && s.zeroKnown(reg, r) {
				pred.Complete = true
				s.terminals = append(s.terminals, pred)
			}
		}
		if !pred.Complete {
			s.queue = append(s.queue, pred)
		}
	}
	pred.Succs = append(pred.Succs, DAGEdge{To: node, Step: step, HasStep: hasStep})
	node.Preds = append(node.Preds, PredEdge{From: pred, Step: step, HasStep: hasStep})
}

// expand enumerates the possible predecessors of a state.
func (s *searcher) expand(node *Node) {
	r := node.R
	if s.known(r) <= 0 || (s.spec.MaxReversals > 0 && r >= s.spec.MaxReversals) {
		// History exhausted or lookahead bound: candidate truncation point.
		node.truncated = true
		if s.deepest == nil || r > s.deepest.R {
			s.deepest = node
		}
		return
	}
	pos := node.Addr

	// Arrival by a taken branch.
	for _, e := range s.c.edgesTo[pos] {
		if phr.Doublet(e.Footprint&3) != node.Reg.Doublet(0) {
			continue // the paper's lowest-doublet pruning
		}
		fromIdx, ok := s.c.Prog.IndexOf(e.From)
		if !ok {
			continue
		}
		next := node.Reg.Clone()
		var top phr.Doublet
		if r < len(s.spec.Ext) {
			top = s.spec.Ext[r]
		}
		next.ReverseUpdate(e.Footprint, top)
		s.link(node, fromIdx, next, r+1, Step{
			Addr: e.From, Target: pos, Taken: true,
			Conditional: e.Kind == EdgeCondTaken, Kind: e.Kind,
		}, true)
	}

	// Arrival by a SYSCALL/EENTER transfer (not PHR-visible).
	for _, from := range s.c.transfersTo[pos] {
		if idx, ok := s.c.Prog.IndexOf(from); ok {
			s.link(node, idx, node.Reg, r, Step{}, false)
		}
	}

	// Arrival by falling through from the previous instruction.
	if node.idx > 0 {
		prev := &s.c.Prog.Instrs[node.idx-1]
		switch prev.Op {
		case isa.JMP, isa.CALL, isa.RET, isa.JR, isa.HALT, isa.SYSCALL, isa.EENTER:
			// cannot fall through
		case isa.BR:
			s.link(node, node.idx-1, node.Reg, r, Step{Addr: prev.Addr, Taken: false, Conditional: true}, true)
		default:
			s.link(node, node.idx-1, node.Reg, r, Step{}, false)
		}
	}
}

// markAlive flags every node that can reach a truncation point or a
// complete entry state by walking predecessors, by propagating aliveness
// forward along successor edges from those anchor nodes.
func (s *searcher) markAlive() {
	var stack []*Node
	for _, n := range s.nodes {
		if n.truncated || n.Complete {
			n.Alive = true
			stack = append(stack, n)
		}
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range n.Succs {
			if !e.To.Alive {
				e.To.Alive = true
				stack = append(stack, e.To)
			}
		}
	}
}

// reconstruct enumerates forward paths from the given start nodes through
// the successor DAG, up to MaxPaths.
func (s *searcher) reconstruct(starts []*Node, complete bool) []Path {
	var out []Path
	var steps []Step
	var walk func(n *Node)
	walk = func(n *Node) {
		if len(out) >= s.spec.MaxPaths {
			return
		}
		if len(n.Succs) == 0 {
			cp := make([]Step, len(steps))
			copy(cp, steps)
			out = append(out, Path{Steps: cp, Complete: complete})
			return
		}
		for _, e := range n.Succs {
			if e.HasStep {
				steps = append(steps, e.Step)
			}
			walk(e.To)
			if e.HasStep {
				steps = steps[:len(steps)-1]
			}
		}
	}
	for _, st := range starts {
		if len(out) >= s.spec.MaxPaths {
			break
		}
		walk(st)
	}
	return out
}
