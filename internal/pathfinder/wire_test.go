package pathfinder

import (
	"testing"

	"pathfinder/internal/wire"
)

func TestPathWireRoundTrip(t *testing.T) {
	p := Path{
		Steps: []Step{
			{Addr: 0x1000, Target: 0x2000, Taken: true, Conditional: false, Kind: EdgeCall},
			{Addr: 0x2004, Taken: false, Conditional: true},
			{Addr: 0x2008, Target: 0x2004, Taken: true, Conditional: true, Kind: EdgeCondTaken},
			{Addr: 0x200c, Target: 0x1001, Taken: true, Kind: EdgeReturn},
		},
		Complete: true,
	}
	w := &wire.Writer{}
	p.EncodeWire(w)
	r := wire.NewReader(w.Bytes())
	got := DecodeWirePath(r)
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	if r.Remaining() != 0 {
		t.Fatalf("%d trailing bytes", r.Remaining())
	}
	if got.Complete != p.Complete || len(got.Steps) != len(p.Steps) {
		t.Fatalf("shape mismatch: %+v", got)
	}
	for i := range p.Steps {
		if got.Steps[i] != p.Steps[i] {
			t.Fatalf("step %d: got %+v want %+v", i, got.Steps[i], p.Steps[i])
		}
	}
}

func TestPathWireRejectsCorruption(t *testing.T) {
	p := Path{Steps: []Step{{Addr: 0x10, Target: 0x20, Taken: true, Kind: EdgeJump}}, Complete: true}
	w := &wire.Writer{}
	p.EncodeWire(w)
	full := w.Bytes()
	for n := 0; n < len(full); n++ {
		r := wire.NewReader(full[:n])
		DecodeWirePath(r)
		if r.Err() == nil {
			t.Fatalf("truncation to %d bytes decoded cleanly", n)
		}
	}
	// Out-of-range edge kind.
	b := append([]byte(nil), full...)
	b[4+8+8+1+1] = 0xee
	r := wire.NewReader(b)
	DecodeWirePath(r)
	if r.Err() == nil {
		t.Fatal("out-of-range edge kind decoded cleanly")
	}
}
