package pathfinder

import (
	"fmt"

	"pathfinder/internal/wire"
)

// Wire codec for recovered paths, used by the snapshot store to persist
// phase-level warm checkpoints. A path is pure data — branch events in
// execution order plus the completeness flag — so the codec is a plain
// field walk.

// maxWireSteps bounds a decoded step count; real recovered paths are a few
// thousand steps (MaxDoublets caps the search itself at 20000).
const maxWireSteps = 1 << 22

// EncodeWire appends the path to w.
func (p Path) EncodeWire(w *wire.Writer) {
	w.U32(uint32(len(p.Steps)))
	for _, s := range p.Steps {
		w.U64(s.Addr)
		w.U64(s.Target)
		w.Bool(s.Taken)
		w.Bool(s.Conditional)
		w.U8(uint8(s.Kind))
	}
	w.Bool(p.Complete)
}

// DecodeWirePath reads a path from rd.
func DecodeWirePath(rd *wire.Reader) Path {
	var p Path
	n := rd.Len(maxWireSteps)
	if rd.Err() != nil {
		return p
	}
	p.Steps = make([]Step, 0, n)
	for i := 0; i < n && rd.Err() == nil; i++ {
		var s Step
		s.Addr = rd.U64()
		s.Target = rd.U64()
		s.Taken = rd.Bool()
		s.Conditional = rd.Bool()
		s.Kind = EdgeKind(rd.U8())
		if s.Kind > EdgeReturn {
			rd.Fail(fmt.Errorf("pathfinder: wire edge kind %d out of range", s.Kind))
		}
		p.Steps = append(p.Steps, s)
	}
	p.Complete = rd.Bool()
	if rd.Err() != nil {
		return Path{}
	}
	return p
}
