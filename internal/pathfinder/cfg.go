// Package pathfinder implements the Pathfinder tool of §6 of the paper:
// given a victim binary (an ISA program — the stand-in for angr's binary
// analysis) and an observed PHR value, it reconstructs the control-flow
// graph and recovers the execution path that produced the PHR, including
// the outcome of every conditional branch instance and loop trip counts.
//
// The search runs backward from the point where execution ended. The PHR
// update is linear over GF(2) in shifted branch footprints, and the lowest
// doublet of the register is written only by the most recent taken branch,
// so candidate predecessors are pruned on doublet 0 exactly as the paper
// describes; each accepted reversal peels one taken branch off the
// register. Doublets shifted out beyond the PHR window can be supplied
// from the Extended Read PHR primitive (§5) to recover unbounded history.
package pathfinder

import (
	"fmt"
	"sort"

	"pathfinder/internal/isa"
	"pathfinder/internal/phr"
)

// EdgeKind classifies how control reached a target.
type EdgeKind uint8

// Edge kinds.
const (
	EdgeCondTaken EdgeKind = iota
	EdgeJump
	EdgeCall
	EdgeReturn
)

func (k EdgeKind) String() string {
	switch k {
	case EdgeCondTaken:
		return "cond-taken"
	case EdgeJump:
		return "jmp"
	case EdgeCall:
		return "call"
	case EdgeReturn:
		return "ret"
	}
	return "edge?"
}

// TakenEdge is one possible taken-branch transition with its PHR footprint.
type TakenEdge struct {
	From      uint64 // branch instruction address
	To        uint64 // target address
	Kind      EdgeKind
	Footprint uint16
}

// CFG is the control-flow model of a program: basic blocks for reporting
// and a taken-edge catalog for the path search.
type CFG struct {
	Prog   *isa.Program
	Blocks []*Block

	edgesTo     map[uint64][]TakenEdge // target address -> possible taken arrivals
	blockOf     map[uint64]int         // leader address -> block index
	indirects   map[uint64][]uint64    // JR address -> candidate targets
	transfersTo map[uint64][]uint64    // handler entry -> SYSCALL/EENTER sites
}

// Block is a straight-line run of instructions ending at a control
// transfer (or the program end).
type Block struct {
	ID    int
	Start uint64 // address of the leader
	End   uint64 // address of the last instruction
	Size  int    // instruction count
	Succs []uint64
}

// Build constructs the CFG of a program.
func Build(p *isa.Program) (*CFG, error) {
	c := &CFG{
		Prog:        p,
		edgesTo:     make(map[uint64][]TakenEdge),
		blockOf:     make(map[uint64]int),
		indirects:   make(map[uint64][]uint64),
		transfersTo: make(map[uint64][]uint64),
	}
	c.buildEdges()
	c.buildBlocks()
	return c, nil
}

// AddTransfer registers a SYSCALL or EENTER binding: the instruction at
// from transfers control to the handler at entry without a PHR-visible
// branch, and the handler's returns land on the instruction after from as
// ordinary (PHR-visible) indirect branches. The binding lives in the
// machine, not the binary, so callers must provide it — the analogue of
// giving angr a syscall model.
func (c *CFG) AddTransfer(from, entry uint64) {
	c.transfersTo[entry] = append(c.transfersTo[entry], from)
	idx, ok := c.Prog.IndexOf(from)
	if !ok || idx+1 >= len(c.Prog.Instrs) {
		return
	}
	pad := c.Prog.Instrs[idx+1].Addr
	for _, r := range c.reachableRets(entry) {
		c.addEdge(TakenEdge{From: r, To: pad, Kind: EdgeReturn, Footprint: phr.Footprint(r, pad)})
	}
}

// TransfersTo lists the SYSCALL/EENTER sites that enter a handler.
func (c *CFG) TransfersTo(entry uint64) []uint64 { return c.transfersTo[entry] }

// AddIndirectTargets registers candidate targets for an indirect jump (JR)
// at addr — the information angr sometimes misses (§6); callers provide it
// from symbols or profiling.
func (c *CFG) AddIndirectTargets(addr uint64, targets ...uint64) {
	c.indirects[addr] = append(c.indirects[addr], targets...)
	for _, t := range targets {
		c.addEdge(TakenEdge{From: addr, To: t, Kind: EdgeJump, Footprint: phr.Footprint(addr, t)})
	}
}

func (c *CFG) addEdge(e TakenEdge) {
	c.edgesTo[e.To] = append(c.edgesTo[e.To], e)
}

func (c *CFG) buildEdges() {
	p := c.Prog
	// Return pads: instruction following each CALL, keyed by callee entry.
	type padInfo struct {
		pad    uint64
		callee uint64
	}
	var pads []padInfo
	for i := range p.Instrs {
		in := &p.Instrs[i]
		switch in.Op {
		case isa.BR:
			c.addEdge(TakenEdge{From: in.Addr, To: in.Target, Kind: EdgeCondTaken, Footprint: phr.Footprint(in.Addr, in.Target)})
		case isa.JMP:
			c.addEdge(TakenEdge{From: in.Addr, To: in.Target, Kind: EdgeJump, Footprint: phr.Footprint(in.Addr, in.Target)})
		case isa.CALL:
			c.addEdge(TakenEdge{From: in.Addr, To: in.Target, Kind: EdgeCall, Footprint: phr.Footprint(in.Addr, in.Target)})
			if i+1 < len(p.Instrs) {
				pads = append(pads, padInfo{pad: p.Instrs[i+1].Addr, callee: in.Target})
			}
		}
	}
	// RET edges: a return in function F may land on any pad of a call to F.
	// Function membership is intraprocedural reachability from the callee
	// entry, treating calls as straight-through.
	retsOf := map[uint64][]uint64{} // callee entry -> RET addresses
	for _, pi := range pads {
		if _, seen := retsOf[pi.callee]; !seen {
			retsOf[pi.callee] = c.reachableRets(pi.callee)
		}
	}
	for _, pi := range pads {
		for _, r := range retsOf[pi.callee] {
			c.addEdge(TakenEdge{From: r, To: pi.pad, Kind: EdgeReturn, Footprint: phr.Footprint(r, pi.pad)})
		}
	}
}

// reachableRets walks forward from entry without descending into callees
// and returns the RET instructions encountered.
func (c *CFG) reachableRets(entry uint64) []uint64 {
	p := c.Prog
	start, ok := p.IndexOf(entry)
	if !ok {
		return nil
	}
	seen := map[int]bool{}
	var rets []uint64
	stack := []int{start}
	for len(stack) > 0 {
		i := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for ; i < len(p.Instrs) && !seen[i]; i++ {
			seen[i] = true
			in := &p.Instrs[i]
			switch in.Op {
			case isa.RET:
				rets = append(rets, in.Addr)
			case isa.HALT:
			case isa.JMP:
				if t, ok := p.IndexOf(in.Target); ok {
					stack = append(stack, t)
				}
			case isa.BR:
				if t, ok := p.IndexOf(in.Target); ok {
					stack = append(stack, t)
				}
				continue // plus fallthrough
			case isa.CALL:
				continue // treat as straight-through (the callee returns)
			case isa.JR:
				for _, t := range c.indirects[in.Addr] {
					if ti, ok := p.IndexOf(t); ok {
						stack = append(stack, ti)
					}
				}
			default:
				continue
			}
			break // control transferred; stop linear scan
		}
	}
	sort.Slice(rets, func(a, b int) bool { return rets[a] < rets[b] })
	return rets
}

// buildBlocks splits the program into basic blocks for reporting.
func (c *CFG) buildBlocks() {
	p := c.Prog
	leader := map[int]bool{0: true}
	for i := range p.Instrs {
		in := &p.Instrs[i]
		if in.IsControl() {
			if i+1 < len(p.Instrs) {
				leader[i+1] = true
			}
			if in.Op == isa.BR || in.Op == isa.JMP || in.Op == isa.CALL {
				if t, ok := p.IndexOf(in.Target); ok {
					leader[t] = true
				}
			}
		}
	}
	var starts []int
	for i := range leader {
		starts = append(starts, i)
	}
	sort.Ints(starts)
	for bi, s := range starts {
		end := len(p.Instrs)
		if bi+1 < len(starts) {
			end = starts[bi+1]
		}
		b := &Block{ID: bi, Start: p.Instrs[s].Addr, End: p.Instrs[end-1].Addr, Size: end - s}
		last := &p.Instrs[end-1]
		switch {
		case last.Op == isa.BR:
			b.Succs = append(b.Succs, last.Target)
			if end < len(p.Instrs) {
				b.Succs = append(b.Succs, p.Instrs[end].Addr)
			}
		case last.Op == isa.JMP || last.Op == isa.CALL:
			b.Succs = append(b.Succs, last.Target)
		case last.Op == isa.RET || last.Op == isa.HALT || last.Op == isa.JR:
		default:
			if end < len(p.Instrs) {
				b.Succs = append(b.Succs, p.Instrs[end].Addr)
			}
		}
		c.Blocks = append(c.Blocks, b)
		c.blockOf[b.Start] = b.ID
	}
}

// BlockAt returns the basic block containing addr.
func (c *CFG) BlockAt(addr uint64) (*Block, bool) {
	idx, ok := c.Prog.IndexOf(addr)
	if !ok {
		return nil, false
	}
	// Walk back to the nearest leader.
	for i := idx; i >= 0; i-- {
		if b, ok := c.blockOf[c.Prog.Instrs[i].Addr]; ok {
			return c.Blocks[b], true
		}
	}
	return nil, false
}

// EdgesTo lists the possible taken arrivals at an address.
func (c *CFG) EdgesTo(addr uint64) []TakenEdge { return c.edgesTo[addr] }

// Dump renders the blocks and their successors, Figure-6 style.
func (c *CFG) Dump() string {
	s := ""
	for _, b := range c.Blocks {
		s += fmt.Sprintf("BB%-3d %#x..%#x (%d instrs) ->", b.ID, b.Start, b.End, b.Size)
		for _, t := range b.Succs {
			s += fmt.Sprintf(" %#x", t)
		}
		s += "\n"
	}
	return s
}
