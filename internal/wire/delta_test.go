package wire

import (
	"bytes"
	"math/rand"
	"testing"
)

// mutate returns a copy of base with a few scattered byte edits and an
// optional length change — the shape of two snapshots sharing a warm
// prefix.
func mutate(base []byte, rng *rand.Rand, edits int, grow int) []byte {
	out := append([]byte(nil), base...)
	for i := 0; i < edits && len(out) > 0; i++ {
		out[rng.Intn(len(out))] ^= byte(1 + rng.Intn(255))
	}
	for i := 0; i < grow; i++ {
		out = append(out, byte(rng.Intn(256)))
	}
	return out
}

func TestDeltaRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	base := make([]byte, 1<<16)
	rng.Read(base)

	cases := []struct {
		name   string
		target []byte
	}{
		{"identical", append([]byte(nil), base...)},
		{"sparse-edits", mutate(base, rng, 40, 0)},
		{"grown-tail", mutate(base, rng, 8, 512)},
		{"truncated-target", base[:len(base)-777]},
		{"empty-target", nil},
		{"empty-base-target", append([]byte(nil), base[:100]...)},
		{"unrelated", func() []byte { b := make([]byte, 1000); rng.Read(b); return b }()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := base
			if tc.name == "empty-base-target" {
				b = nil
			}
			d := EncodeDelta(b, tc.target)
			if !IsDelta(d) {
				t.Fatalf("encoded frame lacks magic")
			}
			bh, th, n, ok := DeltaInfo(d)
			if !ok || bh != HashBytes(b) || th != HashBytes(tc.target) || n != len(tc.target) {
				t.Fatalf("DeltaInfo = (%x, %x, %d, %v)", bh, th, n, ok)
			}
			got, err := DecodeDelta(b, d)
			if err != nil {
				t.Fatalf("DecodeDelta: %v", err)
			}
			if !bytes.Equal(got, tc.target) {
				t.Fatalf("round trip diverged: got %d bytes, want %d", len(got), len(tc.target))
			}
		})
	}
}

func TestDeltaSparseEditsAreSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	base := make([]byte, 1<<20)
	rng.Read(base)
	target := mutate(base, rng, 30, 0)
	d := EncodeDelta(base, target)
	if len(d) >= len(target)/100 {
		t.Fatalf("30 scattered edits over 1 MiB encoded to %d bytes; want well under 1%% of %d", len(d), len(target))
	}
}

func TestDeltaRejectsWrongBase(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	base := make([]byte, 4096)
	rng.Read(base)
	target := mutate(base, rng, 10, 0)
	d := EncodeDelta(base, target)

	wrong := append([]byte(nil), base...)
	wrong[100] ^= 1
	if _, err := DecodeDelta(wrong, d); err == nil {
		t.Fatal("decode accepted a mutated base")
	}
	if _, err := DecodeDelta(nil, d); err == nil {
		t.Fatal("decode accepted an empty base")
	}
}

func TestDeltaRejectsCorruptAndTruncatedFrames(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	base := make([]byte, 8192)
	rng.Read(base)
	target := mutate(base, rng, 25, 64)
	d := EncodeDelta(base, target)

	// Every truncation must be rejected, never misread.
	for n := 0; n < len(d); n += 7 {
		if _, err := DecodeDelta(base, d[:n]); err == nil {
			t.Fatalf("decode accepted a frame truncated to %d of %d bytes", n, len(d))
		}
	}
	// Every single-byte flip must be rejected.
	for i := 0; i < len(d); i += 11 {
		c := append([]byte(nil), d...)
		c[i] ^= 0x40
		if out, err := DecodeDelta(base, c); err == nil && !bytes.Equal(out, target) {
			t.Fatalf("flip at %d decoded to wrong bytes without error", i)
		}
	}
}

func TestDeltaAppendReusesBuffer(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	base := make([]byte, 1<<15)
	rng.Read(base)
	target := mutate(base, rng, 12, 0)

	buf := make([]byte, 0, 1<<16)
	d1 := AppendDelta(buf, base, target)
	if &d1[0] != &buf[:1][0] {
		t.Fatal("AppendDelta did not reuse the supplied buffer")
	}
	got, err := DecodeDelta(base, d1)
	if err != nil || !bytes.Equal(got, target) {
		t.Fatalf("pooled encode round trip failed: %v", err)
	}
}

func FuzzDeltaRoundTrip(f *testing.F) {
	f.Add([]byte("base bytes base bytes"), []byte("base bytes Xase bytes"), []byte{})
	f.Add([]byte{}, []byte{1, 2, 3}, []byte{0xff})
	f.Add(bytes.Repeat([]byte{0xaa}, 300), bytes.Repeat([]byte{0xaa}, 280), []byte{1, 2, 3, 4})
	f.Fuzz(func(t *testing.T, base, target, garbage []byte) {
		if len(base) > 1<<16 || len(target) > 1<<16 {
			return
		}
		d := EncodeDelta(base, target)
		got, err := DecodeDelta(base, d)
		if err != nil {
			t.Fatalf("decode of a fresh frame failed: %v", err)
		}
		if !bytes.Equal(got, target) {
			t.Fatalf("round trip diverged")
		}
		// Arbitrary bytes must never decode into something that claims
		// success with wrong output; errors are the only acceptable outcome
		// unless the mutation left the frame bit-identical in effect.
		if len(garbage) > 0 {
			c := append([]byte(nil), d...)
			for i, g := range garbage {
				c[(i*131+int(g))%len(c)] ^= g | 1
			}
			if out, err := DecodeDelta(base, c); err == nil && !bytes.Equal(out, target) {
				t.Fatalf("corrupted frame decoded to wrong bytes without error")
			}
			if _, err := DecodeDelta(base, garbage); err == nil && !bytes.Equal(garbage, d) {
				t.Fatalf("raw garbage decoded without error")
			}
		}
	})
}

// benchDeltaPair builds a 1 MiB base and a sparsely edited target, the
// documented shape of two warm snapshots sharing a training prefix.
func benchDeltaPair() (base, target []byte) {
	rng := rand.New(rand.NewSource(42))
	base = make([]byte, 1<<20)
	rng.Read(base)
	target = mutate(base, rng, 64, 0)
	return base, target
}

func BenchmarkDeltaEncode(b *testing.B) {
	base, target := benchDeltaPair()
	buf := EncodeDelta(base, target) // pre-size the reuse buffer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = AppendDelta(buf[:0], base, target)
	}
	_ = buf
}

func BenchmarkDeltaDecode(b *testing.B) {
	base, target := benchDeltaPair()
	d := EncodeDelta(base, target)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeDelta(base, d); err != nil {
			b.Fatal(err)
		}
	}
}
