// Differential snapshot transport: a PFWD frame encodes one byte string
// (the target — in practice a PFSN-encoded snapshot) as a sparse set of
// XOR runs against another byte string the receiver already holds (the
// base). Snapshots that share a warm-training prefix differ in a handful of
// PHT counters, the PHR tail and a few cache sets, so the runs cover a few
// kilobytes of a ~1 MiB encoding; everything the codec cannot shrink (a
// target unrelated to its base) still round-trips, it just is not smaller,
// and callers fall back to shipping the full blob.
//
// Safety discipline mirrors the PFSN envelope: the frame is versioned,
// self-verifying via an FNV-1a hash over its own payload, and pins both
// endpoints — DecodeDelta refuses a base whose bytes do not hash to the
// frame's baseHash (applying a delta to the wrong base would otherwise
// reconstruct garbage that only the next layer's hash could catch) and
// refuses an output that does not hash to the frame's targetHash. A torn,
// bit-flipped or mis-based frame is an error, never bytes.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Frame constants. Bump deltaVersion on any layout change; decoders reject
// other versions, like every other envelope in the tree.
const (
	deltaMagic   = "PFWD" // PathFinder Wire Delta
	deltaVersion = 1

	// deltaGapCoalesce is the largest run of equal bytes absorbed into a
	// surrounding XOR run: below this, one fused run is smaller than two
	// runs plus a fresh 8-byte header.
	deltaGapCoalesce = 16

	// deltaHeaderLen is the fixed frame prefix: magic, version, envelope
	// hash, base hash, target hash, target length, run count.
	deltaHeaderLen = 4 + 2 + 8 + 8 + 8 + 4 + 4

	// maxDeltaTarget bounds the decoded output; it matches the snapshot
	// store's per-entry ceiling so corrupt frames cannot drive huge
	// allocations.
	maxDeltaTarget = 64 << 20
)

// ErrDeltaBase is returned by DecodeDelta when the supplied base does not
// hash to the frame's pinned base hash — the caller holds different bytes
// than the encoder diffed against.
var ErrDeltaBase = errors.New("wire: delta base hash mismatch")

// HashBytes folds b FNV-1a style over 64-bit words (trailing bytes fold
// individually). The word grouping makes it ~8x faster than the byte-wise
// fold on megabyte snapshots, which matters because the delta codec hashes
// base, target and frame on every encode and decode. The value differs from
// a byte-wise FNV-1a; it is only ever compared against itself — the PFWD
// frame pins it for base, target and envelope, and transport code calls
// HashBytes on candidate base blobs to match a frame's base pin.
func HashBytes(b []byte) uint64 {
	h := uint64(0xcbf29ce484222325)
	for len(b) >= 8 {
		h = (h ^ binary.LittleEndian.Uint64(b)) * 0x100000001b3
		b = b[8:]
	}
	for _, x := range b {
		h = (h ^ uint64(x)) * 0x100000001b3
	}
	return h
}

// IsDelta reports whether b starts with the PFWD magic — the one-line probe
// transport code uses to tell a delta frame from a full PFSN blob.
func IsDelta(b []byte) bool {
	return len(b) >= 4 && string(b[:4]) == deltaMagic
}

// DeltaInfo peeks a frame's pinned hashes and target length without
// decoding the runs. ok is false when b is not a structurally plausible
// PFWD frame.
func DeltaInfo(b []byte) (baseHash, targetHash uint64, targetLen int, ok bool) {
	if len(b) < deltaHeaderLen || string(b[:4]) != deltaMagic {
		return 0, 0, 0, false
	}
	r := NewReader(b[4:])
	if r.U16() != deltaVersion {
		return 0, 0, 0, false
	}
	_ = r.U64() // envelope hash; verified by DecodeDelta
	baseHash = r.U64()
	targetHash = r.U64()
	targetLen = int(r.U32())
	if r.Err() != nil || targetLen < 0 || targetLen > maxDeltaTarget {
		return 0, 0, 0, false
	}
	return baseHash, targetHash, targetLen, true
}

// EncodeDelta renders target as a PFWD frame against base. The result is
// always decodable (given the same base); it is only *useful* when base and
// target are similar — callers compare len(delta) against len(target) and
// ship the full blob when the delta does not win.
func EncodeDelta(base, target []byte) []byte {
	return AppendDelta(nil, base, target)
}

// AppendDelta is EncodeDelta into a reused buffer: the frame is appended to
// dst (which may be nil) and the extended slice returned, so pooled callers
// encode without allocating in steady state.
func AppendDelta(dst, base, target []byte) []byte {
	// Bytes past the base's end diff against zero, so a longer target's tail
	// XORs to itself and a shorter target is plain truncation via targetLen.
	at := func(i int) byte {
		if i < len(base) {
			return base[i]
		}
		return 0
	}
	// nextDiff returns the first index >= i where target differs from the
	// (zero-extended) base, or len(target). Equal regions are skipped a word
	// at a time: on megabyte snapshots that differ in a few kilobytes this is
	// the whole encode cost, and word compares make it memcmp-shaped.
	cm := min(len(base), len(target))
	nextDiff := func(i int) int {
		for i < cm {
			if i+8 <= cm && binary.LittleEndian.Uint64(target[i:]) == binary.LittleEndian.Uint64(base[i:]) {
				i += 8
				continue
			}
			if target[i] != base[i] {
				return i
			}
			i++
		}
		for i < len(target) {
			if i+8 <= len(target) && binary.LittleEndian.Uint64(target[i:]) == 0 {
				i += 8
				continue
			}
			if target[i] != 0 {
				return i
			}
			i++
		}
		return len(target)
	}

	w := Writer{buf: dst}
	w.Raw([]byte(deltaMagic))
	w.U16(deltaVersion)
	hashAt := w.Len()
	w.U64(0) // envelope hash, patched below
	payloadAt := w.Len()
	w.U64(HashBytes(base))
	w.U64(HashBytes(target))
	w.U32(uint32(len(target)))
	countAt := w.Len()
	w.U32(0) // run count, patched below

	runs := uint32(0)
	i := nextDiff(0)
	for i < len(target) {
		// Open a run at the first differing byte and extend it while the gaps
		// between differences stay below the coalescing threshold.
		start := i
		end := i + 1
		for end < len(target) {
			j := nextDiff(end)
			if j >= len(target) || j-end >= deltaGapCoalesce {
				break
			}
			end = j + 1
		}
		w.U32(uint32(start))
		w.U32(uint32(end - start))
		for j := start; j < end; j++ {
			w.U8(target[j] ^ at(j))
		}
		runs++
		i = nextDiff(end)
	}

	buf := w.Bytes()
	putU32(buf[countAt:], runs)
	putU64(buf[hashAt:], HashBytes(buf[payloadAt:]))
	return buf
}

// DecodeDelta reconstructs the target bytes from a PFWD frame and the base
// it was encoded against. It verifies, in order: the envelope hash (the
// frame itself is intact), the base hash (the caller holds the bytes the
// encoder diffed against), the run structure, and the reconstructed
// target's hash. Any mismatch is an error and no bytes are returned.
func DecodeDelta(base, delta []byte) ([]byte, error) {
	if len(delta) < deltaHeaderLen || string(delta[:4]) != deltaMagic {
		return nil, fmt.Errorf("wire: delta frame lacks %q magic", deltaMagic)
	}
	r := NewReader(delta[4:])
	if v := r.U16(); v != deltaVersion {
		return nil, fmt.Errorf("wire: delta frame version %d, this build speaks %d", v, deltaVersion)
	}
	envHash := r.U64()
	payload := r.Rest()
	if got := HashBytes(payload); got != envHash {
		return nil, fmt.Errorf("wire: delta envelope hash %016x does not match %016x (torn or corrupt frame)", got, envHash)
	}
	baseHash := r.U64()
	targetHash := r.U64()
	targetLen := int(r.U32())
	nRuns := int(r.U32())
	if err := r.Err(); err != nil {
		return nil, err
	}
	if targetLen < 0 || targetLen > maxDeltaTarget {
		return nil, fmt.Errorf("wire: delta target length %d exceeds the %d-byte bound", targetLen, maxDeltaTarget)
	}
	if got := HashBytes(base); got != baseHash {
		return nil, fmt.Errorf("%w: frame pins %016x, supplied base hashes to %016x", ErrDeltaBase, baseHash, got)
	}

	out := make([]byte, targetLen)
	copy(out, base)

	prevEnd := 0
	for k := 0; k < nRuns; k++ {
		off := int(r.U32())
		n := int(r.U32())
		if err := r.Err(); err != nil {
			return nil, err
		}
		if n <= 0 || off < prevEnd || off+n > targetLen || r.Remaining() < n {
			return nil, fmt.Errorf("wire: delta run %d ([%d,%d) of %d) is malformed", k, off, off+n, targetLen)
		}
		x := r.Rest()[:n]
		for j := 0; j < n; j++ {
			out[off+j] ^= x[j]
		}
		r.Skip(n)
		prevEnd = off + n
	}
	if r.Remaining() != 0 {
		return nil, fmt.Errorf("wire: delta frame has %d trailing bytes", r.Remaining())
	}
	if got := HashBytes(out); got != targetHash {
		return nil, fmt.Errorf("wire: reconstructed target hashes to %016x, frame pins %016x", got, targetHash)
	}
	return out, nil
}

// putU32 and putU64 patch little-endian words into an already-written
// buffer (the envelope hash and run count are known only after encoding).
func putU32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}

func putU64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}
