package wire

import (
	"errors"
	"math"
	"testing"
)

// TestRoundTrip: every scalar written comes back identical, in order.
func TestRoundTrip(t *testing.T) {
	w := NewWriter(0)
	w.U64(0xdeadbeefcafef00d)
	w.U32(0x01020304)
	w.U16(0xbeef)
	w.U8(0x7f)
	w.Bool(true)
	w.Bool(false)
	w.I64(-42)
	w.F64(3.14159)
	w.F64(math.Inf(-1))
	w.String("warm-affinity")
	w.String("")
	w.Raw([]byte{9, 8, 7})

	r := NewReader(w.Bytes())
	if got := r.U64(); got != 0xdeadbeefcafef00d {
		t.Errorf("U64 = %#x", got)
	}
	if got := r.U32(); got != 0x01020304 {
		t.Errorf("U32 = %#x", got)
	}
	if got := r.U16(); got != 0xbeef {
		t.Errorf("U16 = %#x", got)
	}
	if got := r.U8(); got != 0x7f {
		t.Errorf("U8 = %#x", got)
	}
	if got := r.Bool(); !got {
		t.Error("Bool(true) read false")
	}
	if got := r.Bool(); got {
		t.Error("Bool(false) read true")
	}
	if got := r.I64(); got != -42 {
		t.Errorf("I64 = %d", got)
	}
	if got := r.F64(); got != 3.14159 {
		t.Errorf("F64 = %v", got)
	}
	if got := r.F64(); !math.IsInf(got, -1) {
		t.Errorf("F64 inf = %v", got)
	}
	if got := r.String(); got != "warm-affinity" {
		t.Errorf("String = %q", got)
	}
	if got := r.String(); got != "" {
		t.Errorf("empty String = %q", got)
	}
	rest := r.take(3)
	if len(rest) != 3 || rest[0] != 9 || rest[2] != 7 {
		t.Errorf("Raw tail = %v", rest)
	}
	if r.Err() != nil {
		t.Fatalf("Err = %v after clean round trip", r.Err())
	}
	if r.Remaining() != 0 {
		t.Fatalf("%d bytes left over", r.Remaining())
	}
}

// TestShortInput: reading past the end latches ErrShort and every later
// read returns zero values without panicking.
func TestShortInput(t *testing.T) {
	w := NewWriter(0)
	w.U32(7)
	r := NewReader(w.Bytes())
	if got := r.U64(); got != 0 {
		t.Errorf("short U64 = %#x, want 0", got)
	}
	if !errors.Is(r.Err(), ErrShort) {
		t.Fatalf("Err = %v, want ErrShort", r.Err())
	}
	// Latched: later reads stay zero, the error stays the first one.
	if got := r.U32(); got != 0 {
		t.Errorf("post-error U32 = %#x, want 0", got)
	}
	if !errors.Is(r.Err(), ErrShort) {
		t.Fatalf("Err overwritten: %v", r.Err())
	}
}

// TestBadBool: a bool byte outside {0,1} is corruption, not data.
func TestBadBool(t *testing.T) {
	r := NewReader([]byte{2})
	_ = r.Bool()
	if r.Err() == nil {
		t.Fatal("Bool(2) latched no error")
	}
}

// TestLenLimit: corrupt length prefixes fail instead of allocating.
func TestLenLimit(t *testing.T) {
	w := NewWriter(0)
	w.U32(1 << 30)
	r := NewReader(w.Bytes())
	if n := r.Len(1024); n != 0 {
		t.Errorf("oversized Len = %d, want 0", n)
	}
	if r.Err() == nil {
		t.Fatal("oversized length latched no error")
	}

	w2 := NewWriter(0)
	w2.U32(3)
	r2 := NewReader(w2.Bytes())
	if n := r2.Len(1024); n != 3 || r2.Err() != nil {
		t.Errorf("Len = %d err %v, want 3 nil", n, r2.Err())
	}
}

// TestTruncatedString: a length prefix promising more bytes than remain
// must latch ErrShort, not slice past the buffer.
func TestTruncatedString(t *testing.T) {
	w := NewWriter(0)
	w.String("abcdef")
	b := w.Bytes()[:6] // cut mid-payload
	r := NewReader(b)
	if got := r.String(); got != "" {
		t.Errorf("truncated String = %q, want \"\"", got)
	}
	if !errors.Is(r.Err(), ErrShort) {
		t.Fatalf("Err = %v, want ErrShort", r.Err())
	}
}
