package wire

import (
	"errors"
	"testing"
)

// frameTwoSections builds the section framing the snapshot formats use: a
// small fixed header followed by two length-prefixed sections.
func frameTwoSections(a, b []byte) []byte {
	w := NewWriter(0)
	w.U16(1) // version
	w.U32(uint32(len(a)))
	w.Raw(a)
	w.U32(uint32(len(b)))
	w.Raw(b)
	return w.Bytes()
}

// decodeTwoSections mirrors frameTwoSections, using Len for bounded section
// lengths and Rest/Skip for zero-copy section access.
func decodeTwoSections(data []byte, limit int) (version uint16, a, b []byte, err error) {
	r := NewReader(data)
	version = r.U16()
	for _, dst := range []*[]byte{&a, &b} {
		n := r.Len(limit)
		if r.Err() != nil {
			return 0, nil, nil, r.Err()
		}
		if len(r.Rest()) < n {
			r.Fail(ErrShort)
			return 0, nil, nil, r.Err()
		}
		*dst = r.Rest()[:n]
		r.Skip(n)
	}
	if r.Err() != nil {
		return 0, nil, nil, r.Err()
	}
	if r.Remaining() != 0 {
		return 0, nil, nil, errors.New("trailing bytes")
	}
	return version, a, b, nil
}

// TestSectionFramingTruncation: a torn file — the framed message cut at
// every possible byte boundary — must decode to an error, never a panic or
// a short section silently accepted. Only the full-length input decodes.
func TestSectionFramingTruncation(t *testing.T) {
	full := frameTwoSections([]byte("snapshot-body"), []byte{0xfe, 0xed})
	for cut := 0; cut < len(full); cut++ {
		if _, _, _, err := decodeTwoSections(full[:cut], 1024); err == nil {
			t.Errorf("decode of %d/%d bytes succeeded, want error", cut, len(full))
		}
	}
	v, a, b, err := decodeTwoSections(full, 1024)
	if err != nil {
		t.Fatalf("full decode: %v", err)
	}
	if v != 1 || string(a) != "snapshot-body" || len(b) != 2 {
		t.Fatalf("decoded v=%d a=%q b=%v", v, a, b)
	}
}

// TestSectionFramingCorruptLengths: oversized or lying length prefixes must
// latch an error instead of allocating or slicing past the buffer.
func TestSectionFramingCorruptLengths(t *testing.T) {
	cases := []struct {
		name  string
		data  []byte
		limit int
	}{
		{"length over structural limit", func() []byte {
			w := NewWriter(0)
			w.U16(1)
			w.U32(1 << 30)
			return w.Bytes()
		}(), 1024},
		{"max u32 length", func() []byte {
			w := NewWriter(0)
			w.U16(1)
			w.U32(0xffffffff)
			return w.Bytes()
		}(), 1 << 20},
		{"length beyond remaining bytes", func() []byte {
			w := NewWriter(0)
			w.U16(1)
			w.U32(64) // claims 64, provides 3
			w.Raw([]byte{1, 2, 3})
			return w.Bytes()
		}(), 1024},
		{"second section truncated", func() []byte {
			full := frameTwoSections([]byte("ok"), []byte("body"))
			return full[:len(full)-2]
		}(), 1024},
		{"trailing garbage", append(frameTwoSections([]byte("a"), []byte("b")), 0x00), 1024},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, _, _, err := decodeTwoSections(tc.data, tc.limit); err == nil {
				t.Error("corrupt framing decoded cleanly, want error")
			}
		})
	}
}

// TestSkip: Skip advances exactly n bytes, a skip past the end latches
// ErrShort, and a skip on a failed reader stays a no-op.
func TestSkip(t *testing.T) {
	w := NewWriter(0)
	w.Raw([]byte{1, 2, 3, 4})
	w.U16(0xbeef)

	r := NewReader(w.Bytes())
	r.Skip(4)
	if got := r.U16(); got != 0xbeef || r.Err() != nil {
		t.Fatalf("after Skip(4): U16 = %#x, err %v", got, r.Err())
	}
	if r.Remaining() != 0 {
		t.Fatalf("%d bytes remain", r.Remaining())
	}

	r2 := NewReader([]byte{1, 2})
	r2.Skip(3)
	if !errors.Is(r2.Err(), ErrShort) {
		t.Fatalf("Skip past end: err = %v, want ErrShort", r2.Err())
	}
	if r2.Remaining() != 2 {
		t.Fatalf("failed Skip consumed bytes: %d remain, want 2", r2.Remaining())
	}

	r3 := NewReader([]byte{1, 2, 3})
	r3.Fail(errors.New("earlier corruption"))
	r3.Skip(2)
	if r3.Remaining() != 3 {
		t.Fatalf("Skip after latched error advanced the reader")
	}
}

// FuzzSectionFraming drives arbitrary bytes through the section decoder and
// the scalar readers. The seed corpus covers the torn-file shapes a crashed
// writer leaves behind: clean encodings, every-field truncations, and a
// length prefix pointing past the end.
func FuzzSectionFraming(f *testing.F) {
	full := frameTwoSections([]byte("snapshot-body"), []byte{0xfe, 0xed})
	f.Add(full)
	f.Add(full[:2])            // header only
	f.Add(full[:6])            // mid length prefix
	f.Add(full[:len(full)-1])  // last byte torn
	f.Add([]byte{})            // empty file
	f.Add([]byte{1, 0, 255, 255, 255, 255}) // length prefix past the end
	bitflip := append([]byte(nil), full...)
	bitflip[3] ^= 0x80
	f.Add(bitflip)

	f.Fuzz(func(t *testing.T, data []byte) {
		v, a, b, err := decodeTwoSections(data, 1<<16)
		if err == nil {
			// A clean decode must re-encode to the identical bytes: the
			// framing is bijective on valid inputs.
			if got := frameTwoSections(a, b); v != 1 && string(got) == string(data) {
				t.Fatalf("non-v1 input round-tripped: %v", data)
			}
		}

		// The scalar readers must never panic and must latch, not reset,
		// their first error.
		r := NewReader(data)
		_ = r.U16()
		_ = r.String()
		_ = r.Bool()
		_ = r.F64()
		n := r.Len(1 << 16)
		r.Skip(n)
		_ = r.U64()
		first := r.Err()
		_ = r.U32()
		if first != nil && !errors.Is(r.Err(), first) {
			t.Fatalf("error overwritten: had %v, now %v", first, r.Err())
		}
		if r.Remaining() < 0 || r.Remaining() > len(data) {
			t.Fatalf("Remaining() = %d outside [0,%d]", r.Remaining(), len(data))
		}
	})
}
