// Package wire is the byte-level substrate of the snapshot wire codec: a
// little-endian append-only Writer and a bounds-checked, error-latching
// Reader. The checkpoint state types (pht, bpu, cache, phr, cpu) build
// their EncodeWire/DecodeWire methods on these two so the full
// cpu.Snapshot serialization stays one flat, versioned byte string with a
// single error check at the end.
//
// The format has no self-description: every field is fixed-width and the
// decoder must mirror the encoder exactly. Versioning happens once, at the
// cpu.Snapshot envelope, not per field — the codec is an exchange format
// between same-version binaries (content-addressed snapshot exchange
// between cluster peers), not an archival format.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// ErrShort is latched by a Reader that runs out of input.
var ErrShort = errors.New("wire: input truncated")

// Writer accumulates the encoding. The zero value is ready to use; Bytes
// returns the buffer. Appends never fail.
type Writer struct {
	buf []byte
}

// NewWriter returns a writer with capacity pre-reserved for n bytes.
func NewWriter(n int) *Writer {
	return &Writer{buf: make([]byte, 0, n)}
}

// NewWriterBuf returns a writer that appends to buf, reusing its capacity —
// the pooled-buffer spelling of NewWriter. Callers that want a fresh
// encoding pass buf[:0].
func NewWriterBuf(buf []byte) *Writer {
	return &Writer{buf: buf}
}

// Bytes returns the accumulated encoding.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the number of bytes written so far.
func (w *Writer) Len() int { return len(w.buf) }

// U64 appends one little-endian 64-bit word.
func (w *Writer) U64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }

// U32 appends one little-endian 32-bit word.
func (w *Writer) U32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }

// U16 appends one little-endian 16-bit word.
func (w *Writer) U16(v uint16) { w.buf = binary.LittleEndian.AppendUint16(w.buf, v) }

// U8 appends one byte.
func (w *Writer) U8(v uint8) { w.buf = append(w.buf, v) }

// Bool appends a bool as one byte (0 or 1).
func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// I64 appends a signed 64-bit word (two's complement).
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// F64 appends a float64 as its IEEE-754 bits.
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// String appends a length-prefixed byte string.
func (w *Writer) String(s string) {
	w.U32(uint32(len(s)))
	w.buf = append(w.buf, s...)
}

// Raw appends exactly len(b) raw bytes with no prefix; the decoder must
// know the length from structure.
func (w *Writer) Raw(b []byte) { w.buf = append(w.buf, b...) }

// Reader consumes an encoding. The first short read latches ErrShort and
// every later read returns zero values, so decode paths check Err once at
// the end instead of after every field.
type Reader struct {
	data []byte
	off  int
	err  error
}

// NewReader wraps data for reading.
func NewReader(data []byte) *Reader { return &Reader{data: data} }

// Err returns the latched error, if any.
func (r *Reader) Err() error { return r.err }

// Rest returns the unread remainder.
func (r *Reader) Rest() []byte { return r.data[r.off:] }

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.data) - r.off }

// Fail latches err (first failure wins); decoders use it to report
// structural corruption the scalar readers cannot see.
func (r *Reader) Fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// take returns the next n bytes, latching ErrShort if fewer remain.
func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.Remaining() < n {
		r.Fail(ErrShort)
		return nil
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b
}

// U64 reads one little-endian 64-bit word.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// U32 reads one little-endian 32-bit word.
func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U16 reads one little-endian 16-bit word.
func (r *Reader) U16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads one byte as a bool, latching an error on anything but 0 or 1.
func (r *Reader) Bool() bool {
	switch r.U8() {
	case 0:
		return false
	case 1:
		return true
	default:
		r.Fail(errors.New("wire: bool byte is neither 0 nor 1"))
		return false
	}
}

// I64 reads a signed 64-bit word.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// Skip advances past n bytes the caller has already consumed through Rest,
// latching ErrShort if fewer remain.
func (r *Reader) Skip(n int) { r.take(n) }

// F64 reads a float64 from its IEEE-754 bits.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// String reads a length-prefixed byte string.
func (r *Reader) String() string {
	n := int(r.U32())
	b := r.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

// Len reads a 32-bit length prefix and validates it against limit, the
// structural maximum the caller can hold. Oversized lengths latch an error
// instead of driving a huge allocation from corrupt input.
func (r *Reader) Len(limit int) int {
	n := int(r.U32())
	if r.err != nil {
		return 0
	}
	if n < 0 || n > limit {
		r.Fail(fmt.Errorf("wire: length %d exceeds limit %d", n, limit))
		return 0
	}
	return n
}
