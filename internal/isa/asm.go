package isa

import (
	"fmt"
	"sort"
)

// Assembler builds a Program in two passes: emission records instructions
// and placement directives; Assemble assigns addresses and resolves labels.
//
// The cursor starts at address 0x1000 and advances one byte per
// instruction. Org moves it forward to an absolute address; Align moves it
// forward to the next address congruent to offset modulo bound. Moving the
// cursor backwards or emitting two instructions at one address is an error,
// reported by Assemble.
type Assembler struct {
	instrs  []Instr           // Addr filled during Assemble
	orgs    map[int]uint64    // instruction index -> absolute address
	aligns  map[int][2]uint64 // instruction index -> {bound, offset}
	labels  map[int][]string  // instruction index -> labels bound to it
	sizes   []uint64          // per-instruction encoded size
	stride  uint64            // current instruction size
	varying bool              // x86-like variable sizes
	errs    []error
	start   uint64
}

// DefaultBase is the cursor start address.
const DefaultBase = 0x1000

// NewAssembler returns an empty assembler.
func NewAssembler() *Assembler {
	return &Assembler{
		orgs:   make(map[int]uint64),
		aligns: make(map[int][2]uint64),
		labels: make(map[int][]string),
		start:  DefaultBase,
		stride: 1,
	}
}

// Stride sets the encoded size of subsequently emitted instructions.
// The default is 1 byte. Attack gadgets use the default (their placement
// is fully Align-controlled); victim code uses VariableStride to emulate
// the byte-granular, multi-byte instruction encoding of x86, which is what
// gives real branch addresses their footprint entropy.
func (a *Assembler) Stride(n uint64) {
	if n == 0 {
		a.errf("isa: zero stride")
		return
	}
	a.stride, a.varying = n, false
}

// VariableStride makes subsequent instructions occupy a deterministic
// pseudo-random 2..6 bytes, approximating compiled x86 code density.
func (a *Assembler) VariableStride() {
	a.stride, a.varying = 0, true
}

func (a *Assembler) errf(format string, args ...any) {
	a.errs = append(a.errs, fmt.Errorf(format, args...))
}

// Org places the next emitted instruction at the absolute address addr.
func (a *Assembler) Org(addr uint64) {
	a.orgs[len(a.instrs)] = addr
}

// Align places the next emitted instruction at the smallest address >= the
// current cursor with addr % bound == offset. Bound must be a power of two
// larger than offset.
func (a *Assembler) Align(bound, offset uint64) {
	if bound == 0 || bound&(bound-1) != 0 || offset >= bound {
		a.errf("isa: bad alignment bound=%#x offset=%#x", bound, offset)
		return
	}
	a.aligns[len(a.instrs)] = [2]uint64{bound, offset}
}

// Label binds a name to the next emitted instruction's address.
func (a *Assembler) Label(name string) {
	a.labels[len(a.instrs)] = append(a.labels[len(a.instrs)], name)
}

func (a *Assembler) emit(in Instr) {
	size := a.stride
	if a.varying {
		i := uint64(len(a.instrs))
		size = 2 + (i*2654435761+0x9e37)%5 // 2..6 bytes, deterministic
	}
	a.instrs = append(a.instrs, in)
	a.sizes = append(a.sizes, size)
}

// Nop emits a no-op.
func (a *Assembler) Nop() { a.emit(Instr{Op: NOP}) }

// Halt stops the machine.
func (a *Assembler) Halt() { a.emit(Instr{Op: HALT}) }

// MovI sets rd to an immediate.
func (a *Assembler) MovI(rd Reg, imm int64) { a.emit(Instr{Op: MOVI, Rd: rd, Imm: imm}) }

// Mov copies rs to rd.
func (a *Assembler) Mov(rd, rs Reg) { a.emit(Instr{Op: MOV, Rd: rd, Rs: rs}) }

// Add emits rd = rs + rt.
func (a *Assembler) Add(rd, rs, rt Reg) { a.emit(Instr{Op: ADD, Rd: rd, Rs: rs, Rt: rt}) }

// AddI emits rd = rs + imm.
func (a *Assembler) AddI(rd, rs Reg, imm int64) { a.emit(Instr{Op: ADDI, Rd: rd, Rs: rs, Imm: imm}) }

// Sub emits rd = rs - rt.
func (a *Assembler) Sub(rd, rs, rt Reg) { a.emit(Instr{Op: SUB, Rd: rd, Rs: rs, Rt: rt}) }

// And emits rd = rs & rt.
func (a *Assembler) And(rd, rs, rt Reg) { a.emit(Instr{Op: AND, Rd: rd, Rs: rs, Rt: rt}) }

// Or emits rd = rs | rt.
func (a *Assembler) Or(rd, rs, rt Reg) { a.emit(Instr{Op: OR, Rd: rd, Rs: rs, Rt: rt}) }

// Xor emits rd = rs ^ rt.
func (a *Assembler) Xor(rd, rs, rt Reg) { a.emit(Instr{Op: XOR, Rd: rd, Rs: rs, Rt: rt}) }

// XorI emits rd = rs ^ imm.
func (a *Assembler) XorI(rd, rs Reg, imm int64) { a.emit(Instr{Op: XORI, Rd: rd, Rs: rs, Imm: imm}) }

// ShlI emits rd = rs << imm.
func (a *Assembler) ShlI(rd, rs Reg, imm int64) { a.emit(Instr{Op: SHLI, Rd: rd, Rs: rs, Imm: imm}) }

// ShrI emits rd = rs >> imm.
func (a *Assembler) ShrI(rd, rs Reg, imm int64) { a.emit(Instr{Op: SHRI, Rd: rd, Rs: rs, Imm: imm}) }

// Mul emits rd = rs * rt.
func (a *Assembler) Mul(rd, rs, rt Reg) { a.emit(Instr{Op: MUL, Rd: rd, Rs: rs, Rt: rt}) }

// Ld emits rd = mem64[rs+imm].
func (a *Assembler) Ld(rd, rs Reg, imm int64) { a.emit(Instr{Op: LD, Rd: rd, Rs: rs, Imm: imm}) }

// St emits mem64[rs+imm] = rt.
func (a *Assembler) St(rs Reg, imm int64, rt Reg) { a.emit(Instr{Op: ST, Rs: rs, Imm: imm, Rt: rt}) }

// LdB emits rd = mem8[rs+imm].
func (a *Assembler) LdB(rd, rs Reg, imm int64) { a.emit(Instr{Op: LDB, Rd: rd, Rs: rs, Imm: imm}) }

// StB emits mem8[rs+imm] = low byte of rt.
func (a *Assembler) StB(rs Reg, imm int64, rt Reg) { a.emit(Instr{Op: STB, Rs: rs, Imm: imm, Rt: rt}) }

// Br emits a conditional branch to a label.
func (a *Assembler) Br(c Cond, rs, rt Reg, label string) {
	a.emit(Instr{Op: BR, Cond: c, Rs: rs, Rt: rt, Sym: label})
}

// Brz branches to label when rs == 0 (compares against R31, which calling
// convention reserves as zero; the assembler does not enforce that).
func (a *Assembler) Brz(rs Reg, label string) { a.Br(EQ, rs, Reg(31), label) }

// Jmp emits an unconditional direct jump to a label.
func (a *Assembler) Jmp(label string) { a.emit(Instr{Op: JMP, Sym: label}) }

// Call emits a call to a label.
func (a *Assembler) Call(label string) { a.emit(Instr{Op: CALL, Sym: label}) }

// Ret returns to the caller.
func (a *Assembler) Ret() { a.emit(Instr{Op: RET}) }

// Jr jumps to the address in rs.
func (a *Assembler) Jr(rs Reg) { a.emit(Instr{Op: JR, Rs: rs}) }

// Clflush evicts mem[rs+imm] from the cache.
func (a *Assembler) Clflush(rs Reg, imm int64) { a.emit(Instr{Op: CLFLUSH, Rs: rs, Imm: imm}) }

// TimedLd emits rd = load latency of mem[rs+imm] (and performs the load).
func (a *Assembler) TimedLd(rd, rs Reg, imm int64) {
	a.emit(Instr{Op: TIMEDLD, Rd: rd, Rs: rs, Imm: imm})
}

// Rand emits rd = next value of the CPU's deterministic random stream.
func (a *Assembler) Rand(rd Reg) { a.emit(Instr{Op: RAND, Rd: rd}) }

// RdCycle emits rd = cycle counter.
func (a *Assembler) RdCycle(rd Reg) { a.emit(Instr{Op: RDCYCLE, Rd: rd}) }

// VLd loads 16 bytes into vd.
func (a *Assembler) VLd(vd VReg, rs Reg, imm int64) {
	a.emit(Instr{Op: VLD, Vd: vd, Rs: rs, Imm: imm})
}

// VSt stores vd to memory.
func (a *Assembler) VSt(rs Reg, imm int64, vd VReg) {
	a.emit(Instr{Op: VST, Vd: vd, Rs: rs, Imm: imm})
}

// VXor xors 16 bytes of memory into vd.
func (a *Assembler) VXor(vd VReg, rs Reg, imm int64) {
	a.emit(Instr{Op: VXOR, Vd: vd, Rs: rs, Imm: imm})
}

// AesEnc emits one AES round on vd with the round key at mem[rs+imm].
func (a *Assembler) AesEnc(vd VReg, rs Reg, imm int64) {
	a.emit(Instr{Op: AESENC, Vd: vd, Rs: rs, Imm: imm})
}

// AesEncLast emits the final AES round on vd.
func (a *Assembler) AesEncLast(vd VReg, rs Reg, imm int64) {
	a.emit(Instr{Op: AESENCLAST, Vd: vd, Rs: rs, Imm: imm})
}

// Syscall emits a system call to kernel stub imm.
func (a *Assembler) Syscall(num int64) { a.emit(Instr{Op: SYSCALL, Imm: num}) }

// EEnter emits an SGX enclave entry to enclave stub imm.
func (a *Assembler) EEnter(num int64) { a.emit(Instr{Op: EENTER, Imm: num}) }

// Ibpb emits an indirect branch predictor barrier.
func (a *Assembler) Ibpb() { a.emit(Instr{Op: IBPB}) }

// Assemble assigns addresses, resolves labels and returns the program.
func (a *Assembler) Assemble() (*Program, error) {
	if len(a.errs) > 0 {
		return nil, a.errs[0]
	}
	if len(a.instrs) == 0 {
		return nil, fmt.Errorf("isa: empty program")
	}
	p := &Program{
		Instrs:   make([]Instr, len(a.instrs)),
		Symbols:  make(map[string]uint64),
		byAddr:   make(map[uint64]int, len(a.instrs)),
		labelIdx: make(map[string]int),
	}
	copy(p.Instrs, a.instrs)

	cursor := a.start
	for i := range p.Instrs {
		if addr, ok := a.orgs[i]; ok {
			if addr < cursor {
				return nil, fmt.Errorf("isa: org %#x moves cursor backwards from %#x", addr, cursor)
			}
			cursor = addr
		}
		if al, ok := a.aligns[i]; ok {
			bound, off := al[0], al[1]
			next := cursor&^(bound-1) | off
			if next < cursor {
				next += bound
			}
			cursor = next
		}
		for _, name := range a.labels[i] {
			if _, dup := p.Symbols[name]; dup {
				return nil, fmt.Errorf("isa: duplicate label %q", name)
			}
			p.Symbols[name] = cursor
			p.labelIdx[name] = i
		}
		p.Instrs[i].Addr = cursor
		if _, dup := p.byAddr[cursor]; dup {
			return nil, fmt.Errorf("isa: two instructions at %#x", cursor)
		}
		p.byAddr[cursor] = i
		cursor += a.sizes[i]
	}
	// Trailing labels (bound past the last instruction) point one past the
	// end; they are valid jump targets only if something is later placed
	// there, so reject them to catch builder bugs early.
	if names := a.labels[len(a.instrs)]; len(names) > 0 {
		return nil, fmt.Errorf("isa: label %q has no instruction", names[0])
	}

	// Resolve control-transfer symbols, predecoding the target's program
	// index alongside its address.
	for i := range p.Instrs {
		in := &p.Instrs[i]
		in.TargetIdx = -1
		if in.Sym == "" {
			continue
		}
		switch in.Op {
		case BR, JMP, CALL:
			addr, ok := p.Symbols[in.Sym]
			if !ok {
				return nil, fmt.Errorf("isa: undefined label %q at %#x", in.Sym, in.Addr)
			}
			in.Target = addr
			if ti, ok := p.byAddr[addr]; ok {
				in.TargetIdx = int32(ti)
			}
		}
	}
	return p, nil
}

// SortedSymbols returns label names ordered by address, for listings.
func (p *Program) SortedSymbols() []string {
	if p.symStale {
		p.refreshSymbols()
	}
	names := make([]string, 0, len(p.Symbols))
	for n := range p.Symbols {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		if p.Symbols[names[i]] != p.Symbols[names[j]] {
			return p.Symbols[names[i]] < p.Symbols[names[j]]
		}
		return names[i] < names[j]
	})
	return names
}
