package isa

import (
	"strings"
	"testing"
)

func TestAssembleBasic(t *testing.T) {
	a := NewAssembler()
	a.Label("start")
	a.MovI(R1, 42)
	a.Label("loop")
	a.AddI(R1, R1, -1)
	a.Br(NE, R1, R0, "loop")
	a.Halt()
	p, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	if got := p.MustSymbol("start"); got != DefaultBase {
		t.Fatalf("start at %#x, want %#x", got, DefaultBase)
	}
	if p.Instrs[2].Target != p.MustSymbol("loop") {
		t.Fatal("branch target unresolved")
	}
	if p.Instrs[1].Addr+1 != p.Instrs[2].Addr {
		t.Fatal("instructions must be one byte long")
	}
}

func TestOrgAndAlign(t *testing.T) {
	a := NewAssembler()
	a.Org(0x2_0000)
	a.Label("a")
	a.Nop()
	a.Align(0x1_0000, 0)
	a.Label("b")
	a.Nop()
	a.Align(0x40, 0x3)
	a.Label("c")
	a.Nop()
	a.Halt()
	p, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	if p.MustSymbol("a") != 0x2_0000 {
		t.Fatalf("org: %#x", p.MustSymbol("a"))
	}
	if p.MustSymbol("b") != 0x3_0000 {
		t.Fatalf("align 64k: %#x", p.MustSymbol("b"))
	}
	if c := p.MustSymbol("c"); c&0x3f != 0x3 || c < 0x3_0000 {
		t.Fatalf("align with offset: %#x", c)
	}
}

func TestAlignAlreadySatisfied(t *testing.T) {
	a := NewAssembler()
	a.Org(0x1_0000)
	a.Align(0x1_0000, 0) // cursor already aligned; must not move
	a.Label("x")
	a.Nop()
	a.Halt()
	p, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	if p.MustSymbol("x") != 0x1_0000 {
		t.Fatalf("align moved an aligned cursor to %#x", p.MustSymbol("x"))
	}
}

func TestOrgBackwardsRejected(t *testing.T) {
	a := NewAssembler()
	a.Org(0x5000)
	a.Nop()
	a.Org(0x2000)
	a.Nop()
	if _, err := a.Assemble(); err == nil {
		t.Fatal("backwards org must fail")
	}
}

func TestUndefinedLabelRejected(t *testing.T) {
	a := NewAssembler()
	a.Jmp("nowhere")
	if _, err := a.Assemble(); err == nil {
		t.Fatal("undefined label must fail")
	}
}

func TestDuplicateLabelRejected(t *testing.T) {
	a := NewAssembler()
	a.Label("x")
	a.Nop()
	a.Label("x")
	a.Nop()
	if _, err := a.Assemble(); err == nil {
		t.Fatal("duplicate label must fail")
	}
}

func TestTrailingLabelRejected(t *testing.T) {
	a := NewAssembler()
	a.Nop()
	a.Label("end")
	if _, err := a.Assemble(); err == nil {
		t.Fatal("trailing label must fail")
	}
}

func TestEmptyProgramRejected(t *testing.T) {
	if _, err := NewAssembler().Assemble(); err == nil {
		t.Fatal("empty program must fail")
	}
}

func TestIndexOfAndAt(t *testing.T) {
	a := NewAssembler()
	a.Nop()
	a.Org(0x9999)
	a.MovI(R3, 7)
	a.Halt()
	p, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	i, ok := p.IndexOf(0x9999)
	if !ok || i != 1 {
		t.Fatalf("IndexOf: %d %v", i, ok)
	}
	in, ok := p.At(0x9999)
	if !ok || in.Op != MOVI || in.Rd != R3 {
		t.Fatal("At")
	}
	if _, ok := p.At(0x1234); ok {
		t.Fatal("At false hit")
	}
}

func TestCondEval(t *testing.T) {
	cases := []struct {
		c    Cond
		a, b uint64
		want bool
	}{
		{EQ, 5, 5, true}, {EQ, 5, 6, false},
		{NE, 5, 6, true}, {NE, 5, 5, false},
		{LT, ^uint64(0), 1, true}, // -1 < 1 signed
		{LTU, ^uint64(0), 1, false},
		{GE, 3, 3, true},
		{GEU, 0, 1, false},
	}
	for _, c := range cases {
		if got := c.c.Eval(c.a, c.b); got != c.want {
			t.Errorf("%v(%d,%d) = %v", c.c, c.a, c.b, got)
		}
	}
}

func TestInstrClassification(t *testing.T) {
	br := Instr{Op: BR}
	jmp := Instr{Op: JMP}
	call := Instr{Op: CALL}
	ret := Instr{Op: RET}
	jr := Instr{Op: JR}
	add := Instr{Op: ADD}
	if !br.IsCondBranch() || !br.IsControl() || br.IsUncondDirect() {
		t.Fatal("BR classification")
	}
	if !jmp.IsUncondDirect() || !call.IsUncondDirect() {
		t.Fatal("JMP/CALL classification")
	}
	if !ret.IsIndirect() || !jr.IsIndirect() {
		t.Fatal("RET/JR classification")
	}
	if add.IsControl() {
		t.Fatal("ADD classification")
	}
}

func TestDisassembleContainsLabelsAndMnemonics(t *testing.T) {
	a := NewAssembler()
	a.Label("entry")
	a.MovI(R1, 10)
	a.Br(EQ, R1, R2, "entry")
	a.AesEnc(V0, R4, 16)
	a.Halt()
	p, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	d := p.Disassemble()
	for _, want := range []string{"entry:", "movi", "br", "aesenc", "halt"} {
		if !strings.Contains(d, want) {
			t.Errorf("disassembly missing %q:\n%s", want, d)
		}
	}
}

func TestSortedSymbols(t *testing.T) {
	a := NewAssembler()
	a.Label("bb")
	a.Nop()
	a.Label("aa")
	a.Nop()
	a.Halt()
	p, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	got := p.SortedSymbols()
	if len(got) != 2 || got[0] != "bb" || got[1] != "aa" {
		t.Fatalf("symbols not address-ordered: %v", got)
	}
}

func TestFootprintControlViaPlacement(t *testing.T) {
	// The attack macros need branches at 64 KiB boundaries with targets
	// whose low 6 bits are chosen freely; verify the assembler delivers
	// that layout.
	a := NewAssembler()
	a.Align(0x1_0000, 0)
	a.Label("br0")
	a.Jmp("t0")
	a.Align(0x1_0000, 0x2) // next slot, low bits 0b10
	a.Label("t0")
	a.Nop()
	a.Halt()
	p, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	if p.MustSymbol("br0")&0xffff != 0 {
		t.Fatalf("branch not 64k-aligned: %#x", p.MustSymbol("br0"))
	}
	if p.MustSymbol("t0")&0x3f != 0x2 {
		t.Fatalf("target low bits: %#x", p.MustSymbol("t0"))
	}
}

func TestStride(t *testing.T) {
	a := NewAssembler()
	a.Stride(4)
	a.Label("a")
	a.Nop()
	a.Label("b")
	a.Nop()
	a.Stride(1)
	a.Label("c")
	a.Nop()
	a.Label("d")
	a.Halt()
	p, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	if p.MustSymbol("b")-p.MustSymbol("a") != 4 {
		t.Fatal("stride 4 not applied")
	}
	if p.MustSymbol("d")-p.MustSymbol("c") != 1 {
		t.Fatal("stride reset not applied")
	}
}

func TestVariableStrideDeterministic(t *testing.T) {
	build := func() *Program {
		a := NewAssembler()
		a.VariableStride()
		a.Label("e")
		for i := 0; i < 32; i++ {
			a.Nop()
		}
		a.Halt()
		p, err := a.Assemble()
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	p1, p2 := build(), build()
	for i := range p1.Instrs {
		if p1.Instrs[i].Addr != p2.Instrs[i].Addr {
			t.Fatal("variable stride not deterministic")
		}
	}
	// Sizes vary within 2..6 bytes.
	for i := 0; i+1 < len(p1.Instrs); i++ {
		d := p1.Instrs[i+1].Addr - p1.Instrs[i].Addr
		if d < 2 || d > 6 {
			t.Fatalf("variable stride %d out of range", d)
		}
	}
}

func TestZeroStrideRejected(t *testing.T) {
	a := NewAssembler()
	a.Stride(0)
	a.Nop()
	if _, err := a.Assemble(); err == nil {
		t.Fatal("zero stride must fail")
	}
}

// TestHashAndVersion pins the content-hash contract the warm-state cache
// keys on: equal programs hash equal, any predictor-visible difference
// (instruction content or a label address) changes the hash, and Reindex
// bumps Version so (pointer, Version) stays a safe cache key.
func TestHashAndVersion(t *testing.T) {
	build := func(imm int64) *Program {
		a := NewAssembler()
		a.Label("main")
		a.MovI(R1, imm)
		a.Label("loop")
		a.AddI(R2, R2, 1)
		a.Br(LT, R2, R1, "loop")
		a.Halt()
		p, err := a.Assemble()
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	p1, p2, p3 := build(4), build(4), build(5)
	if p1.Hash() != p2.Hash() {
		t.Error("identical programs hash differently")
	}
	if p1.Hash() == p3.Hash() {
		t.Error("different immediates hash equal")
	}

	v := p1.Version()
	h := p1.Hash()
	// Move the whole program up by one stride, patcher-style: rewrite
	// addresses in ascending order and Reindex.
	for i := range p1.Instrs {
		p1.Instrs[i].Addr += 64
	}
	if err := p1.Reindex(); err != nil {
		t.Fatal(err)
	}
	if p1.Version() == v {
		t.Error("Reindex did not bump Version")
	}
	if p1.Hash() == h {
		t.Error("re-addressing did not change the hash")
	}
	// The derived views must follow the move: symbol addresses, the address
	// index, and direct-branch targets.
	if got, want := p1.MustSymbol("loop"), p2.MustSymbol("loop")+64; got != want {
		t.Errorf("loop moved to %#x, want %#x", got, want)
	}
	if i, ok := p1.IndexOf(p1.MustSymbol("loop")); !ok || i != 1 {
		t.Errorf("IndexOf(loop) = %d,%v after reindex, want 1,true", i, ok)
	}
	if _, ok := p1.IndexOf(p2.MustSymbol("loop")); ok {
		t.Error("old loop address still resolves after reindex")
	}
	br := &p1.Instrs[2]
	if br.Target != p1.MustSymbol("loop") {
		t.Errorf("branch target %#x did not follow the move to %#x", br.Target, p1.MustSymbol("loop"))
	}
	if name := p1.NameFor(p1.MustSymbol("main")); name != "main" {
		t.Errorf("NameFor(main addr) = %q", name)
	}

	// An out-of-order re-addressing exercises the eager rebuild, and a
	// duplicate address must be rejected.
	p4 := build(4)
	p4.Instrs[0].Addr, p4.Instrs[1].Addr = p4.Instrs[1].Addr, p4.Instrs[0].Addr
	if err := p4.Reindex(); err != nil {
		t.Fatalf("out-of-order reindex failed: %v", err)
	}
	if i, ok := p4.IndexOf(p4.Instrs[3].Addr); !ok || i != 3 {
		t.Errorf("eager index lost instruction 3: got %d,%v", i, ok)
	}
	p5 := build(4)
	p5.Instrs[1].Addr = p5.Instrs[0].Addr
	if err := p5.Reindex(); err == nil {
		t.Error("duplicate addresses survived Reindex")
	}
}
