package isa

import (
	"fmt"
	"sort"

	"pathfinder/internal/wire"
)

// Wire codec for assembled programs, used by the snapshot store to persist
// phase-level warm checkpoints whose recovery artifacts reference a capture
// program. Only the architectural content travels: the instruction sequence
// (including the Assemble-resolved TargetIdx, which is program-order data,
// not an address map) and the symbol table. The lazily derived views —
// byAddr, labelIdx, the version counter — are rebuilt on decode, so a
// decoded program behaves exactly like a freshly assembled one and, because
// Hash ignores the derived views, hashes identically to its source.

// maxWireInstrs bounds a decoded instruction count; the largest real capture
// programs are a few thousand instructions.
const maxWireInstrs = 1 << 22

// EncodeWire appends the program's architectural content to w.
func (p *Program) EncodeWire(w *wire.Writer) {
	w.U32(uint32(len(p.Instrs)))
	for i := range p.Instrs {
		in := &p.Instrs[i]
		w.U64(in.Addr)
		w.U8(uint8(in.Op))
		w.U8(uint8(in.Cond))
		w.U8(uint8(in.Rd))
		w.U8(uint8(in.Rs))
		w.U8(uint8(in.Rt))
		w.U8(uint8(in.Vd))
		w.I64(in.Imm)
		w.U64(in.Target)
		w.String(in.Sym)
		w.I64(int64(in.TargetIdx))
	}
	names := make([]string, 0, len(p.Symbols))
	for name := range p.Symbols {
		names = append(names, name)
	}
	sort.Strings(names)
	w.U32(uint32(len(names)))
	for _, name := range names {
		w.String(name)
		w.U64(p.Symbols[name])
	}
}

// DecodeWireProgram reads a program from rd, rebuilding the address and
// label indices so the result is ready for execution and patching. Structural
// violations — out-of-range opcodes, conditions, registers or target indices,
// duplicate addresses — latch an error on rd.
func DecodeWireProgram(rd *wire.Reader) *Program {
	n := rd.Len(maxWireInstrs)
	if rd.Err() != nil {
		return nil
	}
	p := &Program{
		Instrs:   make([]Instr, 0, n),
		Symbols:  make(map[string]uint64),
		byAddr:   make(map[uint64]int, n),
		labelIdx: make(map[string]int),
	}
	for i := 0; i < n && rd.Err() == nil; i++ {
		var in Instr
		in.Addr = rd.U64()
		in.Op = Op(rd.U8())
		in.Cond = Cond(rd.U8())
		in.Rd = Reg(rd.U8())
		in.Rs = Reg(rd.U8())
		in.Rt = Reg(rd.U8())
		in.Vd = VReg(rd.U8())
		in.Imm = rd.I64()
		in.Target = rd.U64()
		in.Sym = rd.String()
		in.TargetIdx = int32(rd.I64())
		if rd.Err() != nil {
			return nil
		}
		switch {
		case in.Op >= opCount:
			rd.Fail(fmt.Errorf("isa: wire opcode %d out of range", in.Op))
		case int(in.Cond) >= len(condNames):
			rd.Fail(fmt.Errorf("isa: wire condition %d out of range", in.Cond))
		case int(in.Rd) >= NumRegs || int(in.Rs) >= NumRegs || int(in.Rt) >= NumRegs:
			rd.Fail(fmt.Errorf("isa: wire register out of range"))
		case int(in.Vd) >= NumVRegs:
			rd.Fail(fmt.Errorf("isa: wire vector register out of range"))
		case in.TargetIdx < -1 || int(in.TargetIdx) >= n:
			rd.Fail(fmt.Errorf("isa: wire target index %d out of range", in.TargetIdx))
		}
		if rd.Err() != nil {
			return nil
		}
		p.byAddr[in.Addr] = i
		p.Instrs = append(p.Instrs, in)
	}
	if rd.Err() != nil {
		return nil
	}
	if len(p.byAddr) != len(p.Instrs) {
		rd.Fail(fmt.Errorf("isa: wire program has duplicate instruction addresses"))
		return nil
	}
	nSym := rd.Len(maxWireInstrs)
	for i := 0; i < nSym && rd.Err() == nil; i++ {
		name := rd.String()
		addr := rd.U64()
		if rd.Err() != nil {
			return nil
		}
		if name == "" {
			rd.Fail(fmt.Errorf("isa: wire symbol with empty name"))
			return nil
		}
		p.Symbols[name] = addr
		// Labels that name an instruction survive re-addressing through
		// labelIdx, exactly as after Assemble; address-only symbols (if any)
		// stay in the static table.
		if idx, ok := p.byAddr[addr]; ok {
			p.labelIdx[name] = idx
		}
	}
	if rd.Err() != nil {
		return nil
	}
	return p
}
