package isa

import (
	"testing"

	"pathfinder/internal/wire"
)

func wireTestProgram(t *testing.T) *Program {
	t.Helper()
	a := NewAssembler()
	a.Label("start")
	a.MovI(R1, 42)
	a.MovI(R2, 0)
	a.Label("loop")
	a.AddI(R1, R1, -1)
	a.Call("leaf")
	a.Br(NE, R1, R0, "loop")
	a.Jmp("done")
	a.Label("leaf")
	a.Ld(R3, R2, 16)
	a.Ret()
	a.Label("done")
	a.Halt()
	p, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestProgramWireRoundTrip(t *testing.T) {
	p := wireTestProgram(t)
	w := &wire.Writer{}
	p.EncodeWire(w)

	r := wire.NewReader(w.Bytes())
	got := DecodeWireProgram(r)
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	if r.Remaining() != 0 {
		t.Fatalf("%d trailing bytes", r.Remaining())
	}
	if len(got.Instrs) != len(p.Instrs) {
		t.Fatalf("instruction count %d, want %d", len(got.Instrs), len(p.Instrs))
	}
	for i := range p.Instrs {
		if got.Instrs[i] != p.Instrs[i] {
			t.Fatalf("instr %d: got %+v want %+v", i, got.Instrs[i], p.Instrs[i])
		}
	}
	// The content hash keys the warm-state cache across processes, so a
	// decoded program must hash identically to its source.
	if got.Hash() != p.Hash() {
		t.Fatalf("hash mismatch: %#x vs %#x", got.Hash(), p.Hash())
	}
	// The derived views must be rebuilt: symbols resolve, addresses map.
	for _, sym := range []string{"start", "loop", "leaf", "done"} {
		if got.MustSymbol(sym) != p.MustSymbol(sym) {
			t.Fatalf("symbol %q: %#x vs %#x", sym, got.MustSymbol(sym), p.MustSymbol(sym))
		}
	}
	if i, ok := got.IndexOf(p.Instrs[3].Addr); !ok || i != 3 {
		t.Fatalf("IndexOf broken on decoded program: %d %v", i, ok)
	}
	// A decoded program must survive the in-place patch contract: move
	// addresses, Reindex, and symbols/targets follow.
	shift := uint64(0x100)
	for i := range got.Instrs {
		got.Instrs[i].Addr += shift
	}
	if err := got.Reindex(); err != nil {
		t.Fatal(err)
	}
	if got.MustSymbol("loop") != p.MustSymbol("loop")+shift {
		t.Fatal("labelIdx not rebuilt: symbol did not follow re-addressing")
	}
	if br := &got.Instrs[4]; br.Target != got.Instrs[br.TargetIdx].Addr {
		t.Fatal("branch target did not follow re-addressing")
	}
}

func TestProgramWireRejectsCorruption(t *testing.T) {
	p := wireTestProgram(t)
	w := &wire.Writer{}
	p.EncodeWire(w)
	full := w.Bytes()

	// Every truncation must fail loudly, never decode partially.
	for _, n := range []int{0, 1, 3, 8, len(full) / 2, len(full) - 1} {
		r := wire.NewReader(full[:n])
		DecodeWireProgram(r)
		if r.Err() == nil {
			t.Fatalf("truncation to %d bytes decoded cleanly", n)
		}
	}

	corrupt := func(mut func(b []byte)) *wire.Reader {
		b := append([]byte(nil), full...)
		mut(b)
		return wire.NewReader(b)
	}
	// Oversized instruction count drives the length guard, not a huge alloc.
	r := corrupt(func(b []byte) { b[0], b[1], b[2], b[3] = 0xff, 0xff, 0xff, 0x7f })
	DecodeWireProgram(r)
	if r.Err() == nil {
		t.Fatal("oversized instruction count decoded cleanly")
	}
	// Out-of-range opcode in the first instruction.
	r = corrupt(func(b []byte) { b[4+8] = 0xff })
	DecodeWireProgram(r)
	if r.Err() == nil {
		t.Fatal("out-of-range opcode decoded cleanly")
	}
}
