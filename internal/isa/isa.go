// Package isa defines the instruction set of the simulated machine and a
// two-pass assembler for building programs.
//
// The ISA is deliberately small and RISC-like, with two properties the
// Pathfinder attacks depend on:
//
//   - Instructions are byte-addressed and one byte long, and the assembler
//     lets code be placed at arbitrary addresses (Org/Align). Branch
//     *addresses* and branch *targets* are therefore controllable down to
//     the individual bits that form the PHR branch footprint, mirroring the
//     control an attacker has over x86 code layout.
//
//   - Code placement is sparse: falling off an instruction continues with
//     the next instruction in program order even across an address gap, so
//     placing every gadget branch at a 64 KiB boundary costs nothing. The
//     address is predictor-visible metadata; program order is the
//     architectural sequence.
//
// Scalar registers R0..R31 hold uint64; vector registers V0..V7 hold 128
// bits for the AES-NI-style instructions.
package isa

import (
	"fmt"
	"sort"
	"strings"
)

// Reg names a scalar register, 0..31.
type Reg uint8

// VReg names a 128-bit vector register, 0..7.
type VReg uint8

// NumRegs and NumVRegs are the register file sizes.
const (
	NumRegs  = 32
	NumVRegs = 8
)

// Convenient register aliases.
const (
	R0 Reg = iota
	R1
	R2
	R3
	R4
	R5
	R6
	R7
	R8
	R9
	R10
	R11
	R12
	R13
	R14
	R15
)

// Vector register aliases.
const (
	V0 VReg = iota
	V1
	V2
	V3
	V4
	V5
	V6
	V7
)

// Op is an opcode.
type Op uint8

// Opcodes.
const (
	NOP Op = iota
	HALT
	MOVI // Rd = Imm
	MOV  // Rd = Rs
	ADD  // Rd = Rs + Rt
	ADDI // Rd = Rs + Imm
	SUB  // Rd = Rs - Rt
	AND  // Rd = Rs & Rt
	OR   // Rd = Rs | Rt
	XOR  // Rd = Rs ^ Rt
	XORI // Rd = Rs ^ Imm
	SHLI // Rd = Rs << Imm
	SHRI // Rd = Rs >> Imm
	MUL  // Rd = Rs * Rt
	LD   // Rd = mem64[Rs + Imm]
	ST   // mem64[Rs + Imm] = Rt
	LDB  // Rd = mem8[Rs + Imm]
	STB  // mem8[Rs + Imm] = Rt (low byte)
	BR   // if Cond(Rs, Rt): goto Target
	JMP  // goto Target (unconditional direct)
	CALL // push return, goto Target
	RET  // pop return, goto it (indirect)
	JR   // goto Rs (indirect)
	CLFLUSH
	TIMEDLD // Rd = access latency of mem[Rs + Imm] (performs the load)
	RAND    // Rd = deterministic pseudo-random uint64 from the CPU stream
	RDCYCLE // Rd = current cycle counter
	VLD     // Vd = mem128[Rs + Imm]
	VST     // mem128[Rs + Imm] = Vs
	VXOR    // Vd ^= mem128[Rs + Imm]
	AESENC  // Vd = AESENC(Vd, mem128[Rs + Imm])   (one AES round)
	AESENCLAST
	SYSCALL // enter kernel stub Imm, then return here
	EENTER  // enter SGX enclave stub Imm, then return here
	IBPB    // indirect branch predictor barrier
	opCount
)

var opNames = [...]string{
	NOP: "nop", HALT: "halt", MOVI: "movi", MOV: "mov", ADD: "add",
	ADDI: "addi", SUB: "sub", AND: "and", OR: "or", XOR: "xor", XORI: "xori",
	SHLI: "shli", SHRI: "shri", MUL: "mul", LD: "ld", ST: "st", LDB: "ldb",
	STB: "stb", BR: "br", JMP: "jmp", CALL: "call", RET: "ret", JR: "jr",
	CLFLUSH: "clflush", TIMEDLD: "timedld", RAND: "rand", RDCYCLE: "rdcycle",
	VLD: "vld", VST: "vst", VXOR: "vxor", AESENC: "aesenc",
	AESENCLAST: "aesenclast", SYSCALL: "syscall", EENTER: "eenter",
	IBPB: "ibpb",
}

// String returns the mnemonic.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Cond is a branch condition over (Rs, Rt).
type Cond uint8

// Branch conditions.
const (
	EQ Cond = iota // Rs == Rt
	NE
	LT // signed <
	GE // signed >=
	LTU
	GEU
)

var condNames = [...]string{EQ: "eq", NE: "ne", LT: "lt", GE: "ge", LTU: "ltu", GEU: "geu"}

// String returns the condition mnemonic.
func (c Cond) String() string {
	if int(c) < len(condNames) {
		return condNames[c]
	}
	return fmt.Sprintf("cond(%d)", uint8(c))
}

// Eval evaluates the condition on two operand values.
func (c Cond) Eval(a, b uint64) bool {
	switch c {
	case EQ:
		return a == b
	case NE:
		return a != b
	case LT:
		return int64(a) < int64(b)
	case GE:
		return int64(a) >= int64(b)
	case LTU:
		return a < b
	case GEU:
		return a >= b
	}
	panic(fmt.Sprintf("isa: bad condition %d", c))
}

// Instr is one decoded instruction. Addr is its byte address; Target is the
// resolved address of a direct control transfer.
type Instr struct {
	Addr   uint64
	Op     Op
	Cond   Cond
	Rd     Reg
	Rs     Reg
	Rt     Reg
	Vd     VReg
	Imm    int64
	Target uint64 // resolved address target for BR/JMP/CALL
	Sym    string // unresolved target label (pre-assembly) / debug name

	// TargetIdx is the program-order index of the Target instruction,
	// pre-resolved by Assemble so the interpreter's hot dispatch never
	// consults the address map for direct control transfers. It is -1 for
	// non-control instructions and hand-built Instr values; execution falls
	// back to IndexOf when negative. Program-layout patchers that move
	// instruction addresses in place keep TargetIdx valid because indices
	// are invariant under re-addressing.
	TargetIdx int32
}

// IsCondBranch reports whether the instruction is a conditional branch.
func (in *Instr) IsCondBranch() bool { return in.Op == BR }

// IsUncondDirect reports whether the instruction is an unconditional direct
// control transfer (always-taken branch with a static target).
func (in *Instr) IsUncondDirect() bool { return in.Op == JMP || in.Op == CALL }

// IsIndirect reports whether the instruction transfers control through a
// register or stack value.
func (in *Instr) IsIndirect() bool { return in.Op == RET || in.Op == JR }

// IsControl reports whether the instruction can redirect control flow.
func (in *Instr) IsControl() bool {
	return in.IsCondBranch() || in.IsUncondDirect() || in.IsIndirect()
}

// String renders the instruction for disassembly listings.
func (in *Instr) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%#010x: %-10s", in.Addr, in.Op.String())
	switch in.Op {
	case MOVI:
		fmt.Fprintf(&b, "r%d, %d", in.Rd, in.Imm)
	case MOV:
		fmt.Fprintf(&b, "r%d, r%d", in.Rd, in.Rs)
	case ADD, SUB, AND, OR, XOR, MUL:
		fmt.Fprintf(&b, "r%d, r%d, r%d", in.Rd, in.Rs, in.Rt)
	case ADDI, XORI, SHLI, SHRI:
		fmt.Fprintf(&b, "r%d, r%d, %d", in.Rd, in.Rs, in.Imm)
	case LD, LDB, TIMEDLD:
		fmt.Fprintf(&b, "r%d, [r%d%+d]", in.Rd, in.Rs, in.Imm)
	case ST, STB:
		fmt.Fprintf(&b, "[r%d%+d], r%d", in.Rs, in.Imm, in.Rt)
	case BR:
		fmt.Fprintf(&b, "%s r%d, r%d -> %#x", in.Cond, in.Rs, in.Rt, in.Target)
	case JMP, CALL:
		fmt.Fprintf(&b, "%#x", in.Target)
	case JR:
		fmt.Fprintf(&b, "r%d", in.Rs)
	case CLFLUSH:
		fmt.Fprintf(&b, "[r%d%+d]", in.Rs, in.Imm)
	case RAND, RDCYCLE:
		fmt.Fprintf(&b, "r%d", in.Rd)
	case VLD, VXOR, AESENC, AESENCLAST:
		fmt.Fprintf(&b, "v%d, [r%d%+d]", in.Vd, in.Rs, in.Imm)
	case VST:
		fmt.Fprintf(&b, "[r%d%+d], v%d", in.Rs, in.Imm, in.Vd)
	case SYSCALL, EENTER:
		fmt.Fprintf(&b, "%d", in.Imm)
	}
	if in.Sym != "" {
		fmt.Fprintf(&b, "    ; %s", in.Sym)
	}
	return strings.TrimRight(b.String(), " ")
}

// Program is an assembled instruction sequence. Instructions appear in
// program (architectural) order; addresses may be sparse. Fallthrough from
// Instrs[i] continues at Instrs[i+1].
type Program struct {
	Instrs  []Instr
	Symbols map[string]uint64

	byAddr    map[uint64]int
	labelIdx  map[string]int // label name -> instruction index, for Reindex
	addrStale bool           // byAddr lags the Instrs addresses (sorted; use binary search)
	symStale  bool           // Symbols lags the Instrs addresses (resolve via labelIdx)
	version   uint64         // bumped by Reindex; keys derived-form caches (cpu dense decode)
}

// Version returns a counter that Reindex bumps. Every in-place mutation of
// Instrs is followed by a Reindex call (that is the mutation contract the
// address maps already rely on), so (program pointer, Version) safely keys
// caches of decoded forms.
func (p *Program) Version() uint64 { return p.version }

// Hash returns a content hash of the program: an FNV-1a style fold over
// every instruction's predictor-visible fields plus the sorted symbol
// table. Two programs with equal hashes train identical predictor state
// from identical starting conditions, which is what lets the harness
// warm-state cache use it as a content address. Sym strings and the lazily
// derived index maps are excluded; instruction addresses and targets (the
// fields the PHR footprint actually sees) are what matter.
func (p *Program) Hash() uint64 {
	const prime = 0x100000001b3
	h := uint64(0xcbf29ce484222325)
	mix := func(w uint64) { h = (h ^ w) * prime }
	mix(uint64(len(p.Instrs)))
	for i := range p.Instrs {
		in := &p.Instrs[i]
		mix(in.Addr)
		mix(uint64(in.Op)<<32 | uint64(in.Cond)<<24 |
			uint64(in.Rd)<<16 | uint64(in.Rs)<<8 | uint64(in.Rt))
		mix(uint64(in.Vd))
		mix(uint64(in.Imm))
		mix(in.Target)
	}
	names := make([]string, 0, len(p.Symbols))
	for name := range p.Symbols {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		for j := 0; j < len(name); j++ {
			mix(uint64(name[j]))
		}
		mix(p.Symbols[name])
	}
	return h
}

// IndexOf maps an instruction address to its program-order index.
func (p *Program) IndexOf(addr uint64) (int, bool) {
	if p.addrStale {
		lo, hi := 0, len(p.Instrs)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if p.Instrs[mid].Addr < addr {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo < len(p.Instrs) && p.Instrs[lo].Addr == addr {
			return lo, true
		}
		return 0, false
	}
	i, ok := p.byAddr[addr]
	return i, ok
}

// Reindex rebuilds the address-derived views — direct-transfer Target
// addresses, the address map, and the symbol table — after a patcher moved
// instruction addresses in place. Program-order indices (and therefore
// TargetIdx) are invariant under re-addressing, so a patcher only rewrites
// Instr.Addr values and calls Reindex. It reports an error when two
// instructions share an address.
//
// The template patchers call Reindex once per experiment trial, far more
// often than anything reads the derived views, so the maps are refreshed
// lazily when the new addresses are strictly ascending (the assembler's
// invariant, preserved by every patch walk): ascending addresses are
// necessarily unique, lookups binary-search the instruction array, and
// symbols resolve through labelIdx. The eager rebuild remains for programs
// re-addressed out of order.
func (p *Program) Reindex() error {
	p.version++
	sorted := true
	var prev uint64
	for i := range p.Instrs {
		in := &p.Instrs[i]
		if in.TargetIdx >= 0 {
			in.Target = p.Instrs[in.TargetIdx].Addr
		}
		if i > 0 && in.Addr <= prev {
			sorted = false
		}
		prev = in.Addr
	}
	if sorted {
		p.addrStale, p.symStale = true, true
		return nil
	}
	clear(p.byAddr)
	for i := range p.Instrs {
		p.byAddr[p.Instrs[i].Addr] = i
	}
	if len(p.byAddr) != len(p.Instrs) {
		return fmt.Errorf("isa: reindex found duplicate instruction addresses")
	}
	p.addrStale = false
	p.refreshSymbols()
	return nil
}

// refreshSymbols re-derives the Symbols table from labelIdx.
func (p *Program) refreshSymbols() {
	for name, i := range p.labelIdx {
		p.Symbols[name] = p.Instrs[i].Addr
	}
	p.symStale = false
}

// At returns the instruction at the given address.
func (p *Program) At(addr uint64) (*Instr, bool) {
	if i, ok := p.IndexOf(addr); ok {
		return &p.Instrs[i], true
	}
	return nil, false
}

// SymbolAddr resolves a label to its address.
func (p *Program) SymbolAddr(name string) (uint64, bool) {
	if i, ok := p.labelIdx[name]; ok {
		return p.Instrs[i].Addr, true
	}
	a, ok := p.Symbols[name]
	return a, ok
}

// MustSymbol resolves a label or panics; for tests and example binaries.
func (p *Program) MustSymbol(name string) uint64 {
	a, ok := p.SymbolAddr(name)
	if !ok {
		panic("isa: unknown symbol " + name)
	}
	return a
}

// NameFor returns the label declared exactly at addr, if any.
func (p *Program) NameFor(addr uint64) string {
	if p.symStale {
		p.refreshSymbols()
	}
	for name, a := range p.Symbols {
		if a == addr {
			return name
		}
	}
	return ""
}

// Disassemble renders the whole program.
func (p *Program) Disassemble() string {
	var b strings.Builder
	for i := range p.Instrs {
		in := &p.Instrs[i]
		if name := p.NameFor(in.Addr); name != "" {
			fmt.Fprintf(&b, "%s:\n", name)
		}
		b.WriteString("  ")
		b.WriteString(in.String())
		b.WriteByte('\n')
	}
	return b.String()
}
