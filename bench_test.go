package repro

// One benchmark per table and figure of the paper's evaluation. Each bench
// runs the corresponding experiment end to end on the simulated machine and
// prints the rows/series the paper reports; success rates and recovered
// quantities are also exposed as benchmark metrics. Absolute timings are
// simulator-relative; the shapes (who wins, separation margins, plateaus)
// are the reproduction targets. See EXPERIMENTS.md for recorded outputs.

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"pathfinder/internal/attack"
	"pathfinder/internal/bpu"
	"pathfinder/internal/core"
	"pathfinder/internal/cpu"
	"pathfinder/internal/harness"
	"pathfinder/internal/phr"
	"pathfinder/internal/victim"
)

var printOnce sync.Map

func once(b *testing.B, f func()) {
	if _, done := printOnce.LoadOrStore(b.Name(), true); !done {
		f()
	}
}

// BenchmarkTable1_Microarchitectures prints the Table 1 machine configs.
func BenchmarkTable1_Microarchitectures(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = harness.Table1()
	}
	once(b, func() { fmt.Printf("\n--- Table 1 ---\n%s", harness.Table1()) })
}

// BenchmarkObs1_PHRStructure verifies Observation 1 behaviourally: the same
// program leaves identical PHR values on Raptor Lake and Alder Lake.
func BenchmarkObs1_PHRStructure(b *testing.B) {
	same := true
	for i := 0; i < b.N; i++ {
		v := victim.PatternedLoop(30, victim.RandomPattern(30, 3))
		rl, err := core.CaptureVictimPHR(cpu.New(cpu.Options{Arch: bpu.RaptorLake}), v)
		if err != nil {
			b.Fatal(err)
		}
		al, err := core.CaptureVictimPHR(cpu.New(cpu.Options{Arch: bpu.AlderLake}), v)
		if err != nil {
			b.Fatal(err)
		}
		same = same && rl.Equal(al)
	}
	if !same {
		b.Fatal("Observation 1 violated: PHR structures differ")
	}
	once(b, func() {
		fmt.Printf("\n--- Observation 1 ---\nRaptor Lake PHR == Alder Lake PHR for identical programs: %v\n", same)
	})
}

// BenchmarkObs2_CounterWidth reproduces the saturating-counter experiment.
func BenchmarkObs2_CounterWidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := harness.Obs2CounterWidth(context.Background(), harness.Options{}, 12)
		if err != nil {
			b.Fatal(err)
		}
		if rep.CounterBits != 3 {
			b.Fatalf("inferred %d-bit counters, want 3", rep.CounterBits)
		}
		b.ReportMetric(float64(rep.CounterBits), "counter-bits")
		once(b, func() {
			fmt.Printf("\n--- Observation 2 (T^m N^m mispredictions per period) ---\n")
			for _, r := range rep.Points {
				fmt.Printf("m=%-3d %.2f\n", r.M, r.MispredictPerPeriod)
			}
			fmt.Printf("plateau => %d-bit saturating counters\n", rep.CounterBits)
		})
	}
}

// BenchmarkFig2_Footprint exercises the branch-footprint function.
func BenchmarkFig2_Footprint(b *testing.B) {
	var acc uint16
	for i := 0; i < b.N; i++ {
		acc ^= phr.Footprint(uint64(i)*2654435761, uint64(i)*40503)
	}
	_ = acc
	once(b, func() {
		fmt.Printf("\n--- Figure 2 ---\nfootprint(0xac40, 0x15) = %#04x; zero-footprint branch: %v\n",
			phr.Footprint(0xac40, 0x15), phr.Footprint(0x7fff0000, 0x40) == 0)
	})
}

// BenchmarkFig4_ReadDoublet reproduces the Figure 4 candidate-rate matrix.
func BenchmarkFig4_ReadDoublet(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := harness.Fig4ReadDoublet(context.Background(), harness.Options{}, 4)
		if err != nil {
			b.Fatal(err)
		}
		once(b, func() {
			fmt.Printf("\n--- Figure 4 (test-branch misprediction rate per candidate X) ---\n")
			for _, r := range rep.Rows {
				fmt.Printf("doublet %d: X=0:%.2f X=1:%.2f X=2:%.2f X=3:%.2f  (true P=%d)\n",
					r.Doublet, r.Rates[0], r.Rates[1], r.Rates[2], r.Rates[3], r.True)
			}
		})
	}
}

// BenchmarkReadPHR_RandomValues reproduces the §4.2 evaluation (scaled from
// the paper's 1000 random values; every trial must read back exactly).
func BenchmarkReadPHR_RandomValues(b *testing.B) {
	const trials, doublets = 8, 48
	for i := 0; i < b.N; i++ {
		rep, err := harness.ReadPHRRandomEval(context.Background(), harness.Options{Seed: int64(i)}, trials, doublets)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rep.Successes)/float64(trials), "success-rate")
		once(b, func() {
			fmt.Printf("\n--- §4.2 Read PHR evaluation ---\n%d/%d random PHR values read back exactly (first %d doublets)\n", rep.Successes, trials, doublets)
		})
	}
}

// BenchmarkPHT_ReadWrite exercises Attack Primitives 2 and 3: write a
// counter state, accumulate victim executions, read the counter back.
func BenchmarkPHT_ReadWrite(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := cpu.New(cpu.Options{Seed: int64(i)})
		reg := phr.New(m.Arch().PHRSize)
		reg.SetDoublet(3, 2)
		pc := uint64(0x00cd_9c80)
		if err := core.WritePHT(m, pc, reg, false); err != nil {
			b.Fatal(err)
		}
		for k := 0; k < 2; k++ { // two "victim" taken executions
			if _, err := core.RunAliased(m, pc, reg, []bool{true}); err != nil {
				b.Fatal(err)
			}
		}
		mis, err := core.ReadPHT(m, pc, reg, 4)
		if err != nil {
			b.Fatal(err)
		}
		if mis != 2 {
			b.Fatalf("probe mispredicts = %d, want 2 (two taken instances)", mis)
		}
		once(b, func() {
			fmt.Printf("\n--- §4.3/4.4 Write/Read PHT ---\nprimed strongly-not-taken; 2 victim taken instances; probe mispredicts: %d (paper: '2 mispredictions indicates it moved two steps')\n", mis)
		})
	}
}

// BenchmarkFig5_ExtendedReadPHR reproduces the §5 evaluation across victim
// sizes within and beyond the 194-branch window.
func BenchmarkFig5_ExtendedReadPHR(b *testing.B) {
	trips := []int{60, 150, 250, 400}
	for i := 0; i < b.N; i++ {
		rep, err := harness.ExtendedReadEval(context.Background(), harness.Options{Seed: int64(13 + i)}, trips)
		if err != nil {
			b.Fatal(err)
		}
		exact := 0
		for _, r := range rep.Cases {
			if r.Exact {
				exact++
			}
		}
		b.ReportMetric(float64(exact)/float64(len(rep.Cases)), "exact-rate")
		once(b, func() {
			fmt.Printf("\n--- §5 Extended Read PHR evaluation ---\n")
			for _, r := range rep.Cases {
				fmt.Printf("taken branches %-5d exact recovery: %v\n", r.TakenBranches, r.Exact)
			}
		})
	}
}

// BenchmarkFig6_PathfinderAES reproduces the Figure 6 CFG recovery.
func BenchmarkFig6_PathfinderAES(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.Fig6PathfinderAES(context.Background(), harness.Options{Seed: int64(17 + i)})
		if err != nil {
			b.Fatal(err)
		}
		if res.LoopIterations != 9 {
			b.Fatalf("loop iterations %d, want 9", res.LoopIterations)
		}
		b.ReportMetric(float64(res.LoopIterations), "loop-iterations")
		once(b, func() {
			fmt.Printf("\n--- Figure 6 (Pathfinder on looped AES-128) ---\nrecovered block sequence: %v\naesenc loop executes %d times (8 taken back-edges + exit)\n",
				res.BlockSequence, res.LoopIterations)
		})
	}
}

// BenchmarkPathfinder_Microbench reproduces the §6 microbenchmark
// evaluation over random CFGs.
func BenchmarkPathfinder_Microbench(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exact := 0
		const cases = 6
		for c := 0; c < cases; c++ {
			m := cpu.New(cpu.Options{Seed: int64(c)})
			v := victim.RandomCFG(int64(23+c), 6+c)
			rec, err := core.ExtendedReadPHR(m, v, core.ExtendedOptions{})
			if err != nil {
				b.Fatal(err)
			}
			if rec.Path.Complete {
				exact++
			}
		}
		b.ReportMetric(float64(exact)/cases, "exact-rate")
		once(b, func() {
			fmt.Printf("\n--- §6 Pathfinder microbenchmarks ---\n%d/%d random CFGs (loops, nested loops, data-dependent branches) recovered completely\n", exact, cases)
		})
	}
}

// BenchmarkTable2_AttackSurface re-derives the boundary matrix.
func BenchmarkTable2_AttackSurface(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cells, err := attack.AttackSurface()
		if err != nil {
			b.Fatal(err)
		}
		once(b, func() {
			fmt.Printf("\n--- Table 2 (attack primitives practicality) ---\n%s", attack.FormatSurface(cells))
		})
	}
}

// BenchmarkSyscallBranchCounts reproduces the §7.1 measurement.
func BenchmarkSyscallBranchCounts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		entry, exit, err := harness.SyscallBranchCounts()
		if err != nil {
			b.Fatal(err)
		}
		once(b, func() {
			fmt.Printf("\n--- §7.1 ---\nsyscall entry adds %d branch outcomes to the PHR, exit adds %d\n", entry, exit)
		})
	}
}

// BenchmarkFig7_ImageRecovery reproduces the §8 image-recovery evaluation
// over (a subset of) the secret-image test set. cmd/imagerecover runs the
// full 15-image set.
func BenchmarkFig7_ImageRecovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := harness.Fig7ImageRecovery(context.Background(), harness.Options{}, 24, 60, 3)
		if err != nil {
			b.Fatal(err)
		}
		var acc float64
		for _, r := range rep.Images {
			acc += r.FlagAccuracy
		}
		b.ReportMetric(acc/float64(len(rep.Images)), "flag-accuracy")
		once(b, func() {
			fmt.Printf("\n--- Figure 7 / §8 image recovery (24x24 thumbnails; cmd/imagerecover runs the full set) ---\n")
			fmt.Printf("%-12s %-16s %-14s %s\n", "image", "taken branches", "flag accuracy", "edge corr")
			for _, r := range rep.Images {
				fmt.Printf("%-12s %-16d %-14.3f %.2f\n", r.Name, r.TakenBranches, r.FlagAccuracy, r.EdgeCorrelation)
			}
		})
	}
}

// BenchmarkAES_KeyRecovery reproduces the §9 evaluation: stolen
// reduced-round ciphertext bytes vs ground truth under noise, plus full key
// recovery (paper: 98.43% average byte success).
func BenchmarkAES_KeyRecovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.AESLeakEval(context.Background(), harness.Options{Seed: int64(31 + i)}, 120, 0.015)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.SuccessRate, "byte-success-rate")
		once(b, func() {
			fmt.Printf("\n--- §9 AES evaluation ---\nstolen bytes matching ground truth: %d/%d (%.2f%%; paper reports 98.43%%)\nfull AES-128 key recovered from skip-loop leaks: %v\n",
				res.ByteSuccesses, res.TotalBytes, 100*res.SuccessRate, res.KeyRecovered)
		})
	}
}

// BenchmarkMitigations reproduces the §10 mitigation table.
func BenchmarkMitigations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := attack.EvaluateMitigations()
		if err != nil {
			b.Fatal(err)
		}
		once(b, func() {
			fmt.Printf("\n--- §10 mitigations ---\n%-40s %-12s %s\n", "mitigation", "cost (instr)", "defeats PHR leak")
			for _, r := range rows {
				fmt.Printf("%-40s %-12d %v\n", r.Name, r.CostInstructions, r.Defeated)
			}
		})
	}
}
