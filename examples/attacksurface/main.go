// The §7 and §10 analyses: which protection boundaries the primitives
// cross (Table 2), and what the proposed mitigations cost and achieve.
package main

import (
	"fmt"
	"log"

	"pathfinder/internal/attack"
	"pathfinder/internal/victim"
)

func main() {
	fmt.Println("re-deriving Table 2 (primitives across protection boundaries) ...")
	cells, err := attack.AttackSurface()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(attack.FormatSurface(cells))
	fmt.Printf("\nsyscall entry/exit contribute %d/%d branch outcomes to the PHR (§7.1)\n\n",
		victim.SyscallEntryBranches, victim.SyscallExitBranches)

	fmt.Println("evaluating §10 mitigations ...")
	rows, err := attack.EvaluateMitigations()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%-40s %-14s %s\n", "mitigation", "cost (instr)", "defeats PHR leak")
	for _, r := range rows {
		fmt.Printf("%-40s %-14d %v\n", r.Name, r.CostInstructions, r.Defeated)
	}
}
