// The §8 case study end to end: capture the complete control flow of a
// JPEG decoder's IDCT over a secret image and reconstruct the image's
// complexity map, which resembles an edge detection of the original.
package main

import (
	"fmt"
	"log"

	"pathfinder/internal/attack"
	"pathfinder/internal/cpu"
	"pathfinder/internal/jpeg"
	"pathfinder/internal/media"
)

func main() {
	secret := media.QRLike(24, 24, 7)
	enc, err := jpeg.Encode(secret.Pix, secret.W, secret.H, 60)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("secret image (%dx%d, %d bytes encoded):\n%s\n",
		secret.W, secret.H, len(enc), secret.ASCII(1))

	ir := &attack.ImageRecovery{M: cpu.New(cpu.Options{Seed: 9})}
	fmt.Println("recovering the IDCT control flow (Extended Read PHR + Pathfinder) ...")
	res, err := ir.Recover(enc)
	if err != nil {
		log.Fatal(err)
	}
	if err := res.Score(secret); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered %d taken branches of decoder history\n", res.TakenBranches)
	fmt.Printf("block-complexity reconstruction (bright = complex = edges):\n%s\n",
		res.Recovered.ASCII(1))
	fmt.Printf("edge map of the original, for comparison:\n%s\n",
		media.EdgeMap(secret).ASCII(1))
	fmt.Printf("correlation with the original's edge map: %.2f\n", res.EdgeCorrelation)
}
