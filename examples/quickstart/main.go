// Quickstart: build the simulated machine, exercise the four attack
// primitives of §4 against a toy victim, and print what each one observes.
package main

import (
	"fmt"
	"log"

	"pathfinder/internal/core"
	"pathfinder/internal/cpu"
	"pathfinder/internal/phr"
	"pathfinder/internal/victim"
)

func main() {
	m := cpu.New(cpu.Options{Seed: 1})
	fmt.Printf("machine: %s (%s), PHR depth %d doublets\n\n",
		m.Arch().Name, m.Arch().Model, m.Arch().PHRSize)

	// Write_PHR / Shift_PHR / Clear_PHR: the PHR as a scratchpad.
	want := phr.New(m.Arch().PHRSize)
	for i := 0; i < want.Size(); i++ {
		want.SetDoublet(i, phr.Doublet((i*7)&3))
	}
	if err := core.WritePHR(m, want); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Write_PHR: register now equals the requested value: %v\n",
		m.Hart(0).PHR.Equal(want))
	if err := core.ClearPHR(m); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Clear_PHR: register zeroed: %v\n\n", m.Hart(0).PHR.IsZero())

	// Read_PHR against a victim whose control flow depends on secret bits.
	secret := victim.RandomPattern(12, 99)
	v := victim.PatternedLoop(12, secret)
	truth, err := core.CaptureVictimPHR(m, v)
	if err != nil {
		log.Fatal(err)
	}
	got, err := core.ReadPHR(m, v, core.ReadPHROptions{MaxDoublets: 40})
	if err != nil {
		log.Fatal(err)
	}
	match := 0
	for k := 0; k < 40; k++ {
		if got.Doublet(k) == truth.Doublet(k) {
			match++
		}
	}
	fmt.Printf("Read_PHR: %d/40 doublets of the victim's path history recovered\n", match)

	// Extended_Read_PHR + Pathfinder: the full control flow, i.e. the secret.
	rec, err := core.ExtendedReadPHR(m, v, core.ExtendedOptions{})
	if err != nil {
		log.Fatal(err)
	}
	bit := rec.CaptureProgram.MustSymbol("pl_bit")
	var leaked []byte
	for _, s := range rec.Path.Outcomes() {
		if s.Addr == bit {
			if s.Taken {
				leaked = append(leaked, 1)
			} else {
				leaked = append(leaked, 0)
			}
		}
	}
	fmt.Printf("Pathfinder: victim secret bits %v\n", secret)
	fmt.Printf("            leaked secret bits %v\n", leaked)

	// Write_PHT / Read_PHT: the tables as a scratchpad.
	pc := uint64(0x00ab_5c80)
	reg := phr.New(m.Arch().PHRSize)
	reg.SetDoublet(0, 2)
	if err := core.WritePHT(m, pc, reg, false); err != nil {
		log.Fatal(err)
	}
	if _, err := core.RunAliased(m, pc, reg, []bool{true, true, true}); err != nil {
		log.Fatal(err)
	}
	mis, err := core.ReadPHT(m, pc, reg, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nWrite_PHT/Read_PHT: primed strongly-not-taken; after 3 taken instances the probe mispredicts %d/4 times (counter moved 3 steps)\n", mis)
}
