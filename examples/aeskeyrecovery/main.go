// The §9 case study end to end: recover the control flow of a looped
// AES-NI encryption oracle, speculatively terminate the loop at chosen
// iterations to steal reduced-round ciphertexts over Flush+Reload, and
// recover the full AES-128 key.
package main

import (
	"fmt"
	"log"

	"pathfinder/internal/aes"
	"pathfinder/internal/attack"
	"pathfinder/internal/cpu"
)

func main() {
	key := []byte{0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
		0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c}
	m := cpu.New(cpu.Options{Seed: 42, Noise: 0.01})
	a, err := attack.NewAESAttack(m, key)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("phase 1: Extended Read PHR + Pathfinder on the oracle ...")
	if err := a.RecoverControlFlow(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  recovered CFG: the aesenc loop runs %d times (AES-128)\n\n", a.LoopIterations())

	pt := aes.Block{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}
	fmt.Println("phase 2: poison the PHT at chosen loop iterations and steal reduced-round ciphertexts:")
	for n := 0; n <= 8; n++ {
		leak, ok, err := a.LeakReducedRound(pt, n)
		if err != nil {
			log.Fatal(err)
		}
		want, _ := a.GroundTruthReduced(pt, n)
		good := 0
		for i := 0; i < 16; i++ {
			if ok[i] && leak[i] == want[i] {
				good++
			}
		}
		fmt.Printf("  exit after %d rounds: stolen % x  (%2d/16 bytes correct)\n", n, leak, good)
	}

	fmt.Println("\nphase 3: differential key recovery from skip-loop leaks ...")
	recovered, queries, err := a.RecoverKey(64)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  oracle queries used: %d\n", queries)
	fmt.Printf("  true key:      % x\n", key)
	fmt.Printf("  recovered key: % x\n", recovered[:])
}
